// Package issa builds the interprocedural SSA form of §3.4: each procedure's
// body is converted to SSA with φ nodes at IF joins and loop headers, weak
// updates for array stores (an array definition merges the old array value,
// §3.4.2), and interprocedural edges modeled as parameter-in φ nodes (one
// operand per call site, tagged with the call so slicing stays
// context-sensitive) and return/final-definition edges.
package issa

import (
	"fmt"

	"suifx/internal/ir"
	"suifx/internal/modref"
)

// Kind classifies SSA nodes.
type Kind int

const (
	// KDef is an ordinary definition (assignment or READ target).
	KDef Kind = iota
	// KPhi merges definitions at IF joins and loop headers.
	KPhi
	// KFormalIn is the entry value of a formal parameter or common variable
	// (a φ over call sites).
	KFormalIn
	// KCallOut is the value of a variable after a call that may modify it
	// (the return edge).
	KCallOut
	// KIndex is a DO loop's index definition.
	KIndex
)

func (k Kind) String() string {
	switch k {
	case KDef:
		return "def"
	case KPhi:
		return "phi"
	case KFormalIn:
		return "formal-in"
	case KCallOut:
		return "call-out"
	default:
		return "index"
	}
}

// Node is one SSA definition.
type Node struct {
	ID   int
	Kind Kind
	Proc string
	Sym  *ir.Symbol
	Stmt ir.Stmt // defining statement (nil for FormalIn)
	Line int
	// Ops are the data operands: definitions whose values flow into this
	// one. Weak updates include the previous array definition.
	Ops []*Node
	// Ctrl are the definitions feeding the conditions under which this node
	// executes (all enclosing guards within the procedure).
	Ctrl []*Node
	// CtrlStmts are the guarding IF/DO statements themselves, for display.
	CtrlStmts []ir.Stmt
	// CalleeFinal links a KCallOut to the callee's final definition(s).
	CalleeFinal []*Node
	// Weak marks array element stores (the rest of the array flows through).
	Weak bool
}

func (n *Node) String() string {
	return fmt.Sprintf("%s:%s@%d#%d(%s)", n.Proc, n.Sym.Name, n.Line, n.ID, n.Kind)
}

// Binding records one call site's actual-value operands for a FormalIn φ.
type Binding struct {
	Call *ir.Call
	Defs []*Node
}

// Graph is the whole-program ISSA graph.
type Graph struct {
	Prog  *ir.Program
	MR    *modref.Info
	Nodes []*Node
	// FormalIn maps each procedure's entry values: formals and touched
	// common variables (canonical keys).
	FormalIn map[string]map[*ir.Symbol]*Node
	// FinalDef maps each procedure's exit definitions for the same symbols.
	FinalDef map[string]map[*ir.Symbol]*Node
	// Bindings lists, per FormalIn node, the per-call-site actual operands —
	// the φ arguments tagged with their return edge (§3.4.3).
	Bindings map[*Node][]Binding
	// UseDefs maps each use occurrence (VarRef/ArrayRef expression) to the
	// reaching definition(s) of the referenced variable.
	UseDefs map[ir.Expr][]*Node
	// touched lists the canonical common symbols each proc (transitively)
	// accesses.
	touched map[string][]*ir.Symbol

	canon map[string]*ir.Symbol
	next  int
}

// Build constructs the ISSA graph for a program.
func Build(prog *ir.Program) *Graph {
	g := &Graph{
		Prog:     prog,
		MR:       modref.Analyze(prog),
		FormalIn: map[string]map[*ir.Symbol]*Node{},
		FinalDef: map[string]map[*ir.Symbol]*Node{},
		Bindings: map[*Node][]Binding{},
		UseDefs:  map[ir.Expr][]*Node{},
		touched:  map[string][]*ir.Symbol{},
		canon:    map[string]*ir.Symbol{},
	}
	order, _ := prog.BottomUpOrder()
	for _, p := range order {
		g.computeTouched(p)
	}
	for _, p := range order {
		g.buildProc(p)
	}
	return g
}

// Canon unifies common-block members with identical layouts across procs.
func (g *Graph) Canon(sym *ir.Symbol) *ir.Symbol {
	if sym.Common == "" {
		return sym
	}
	key := fmt.Sprintf("%s+%d:%d:%v", sym.Common, sym.CommonOffset, sym.NElems(), sym.Dims)
	if c := g.canon[key]; c != nil {
		return c
	}
	g.canon[key] = sym
	return sym
}

// computeTouched collects the canonical common symbols a procedure or its
// callees access.
func (g *Graph) computeTouched(p *ir.Proc) {
	set := map[*ir.Symbol]bool{}
	for _, s := range p.SortedSyms() {
		if s.Common != "" {
			set[g.Canon(s)] = true
		}
	}
	for _, callee := range g.Prog.CallGraph()[p.Name] {
		for _, s := range g.touched[callee] {
			set[s] = true
		}
	}
	var out []*ir.Symbol
	for s := range set {
		out = append(out, s)
	}
	// Deterministic order.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].Name < out[i].Name || (out[j].Name == out[i].Name && out[j].Common < out[i].Common) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	g.touched[p.Name] = out
}

func (g *Graph) newNode(k Kind, proc string, sym *ir.Symbol, stmt ir.Stmt, line int) *Node {
	g.next++
	n := &Node{ID: g.next, Kind: k, Proc: proc, Sym: sym, Stmt: stmt, Line: line}
	g.Nodes = append(g.Nodes, n)
	return n
}

// builder walks one procedure.
type builder struct {
	g     *Graph
	proc  *ir.Proc
	env   map[*ir.Symbol]*Node
	guard []guardEntry
}

type guardEntry struct {
	stmt ir.Stmt
	defs []*Node
}

func (g *Graph) buildProc(p *ir.Proc) {
	b := &builder{g: g, proc: p, env: map[*ir.Symbol]*Node{}}
	ins := map[*ir.Symbol]*Node{}
	for _, f := range p.Params {
		n := g.newNode(KFormalIn, p.Name, f, nil, p.Pos.Line)
		ins[f] = n
		b.env[f] = n
	}
	for _, c := range g.touched[p.Name] {
		n := g.newNode(KFormalIn, p.Name, c, nil, p.Pos.Line)
		ins[c] = n
		b.env[c] = n
	}
	g.FormalIn[p.Name] = ins
	b.walk(p.Body)
	finals := map[*ir.Symbol]*Node{}
	for sym := range ins {
		finals[sym] = b.lookup(sym)
	}
	g.FinalDef[p.Name] = finals
}

// lookup returns the current definition of sym, creating an implicit entry
// definition for locals first used before assignment.
func (b *builder) lookup(sym *ir.Symbol) *Node {
	key := b.g.Canon(sym)
	if n := b.env[key]; n != nil {
		return n
	}
	n := b.g.newNode(KFormalIn, b.proc.Name, key, nil, b.proc.Pos.Line)
	b.env[key] = n
	return n
}

func (b *builder) define(sym *ir.Symbol, n *Node) { b.env[b.g.Canon(sym)] = n }

// ctrlDefs flattens the current guard stack.
func (b *builder) ctrl() (defs []*Node, stmts []ir.Stmt) {
	for _, ge := range b.guard {
		defs = append(defs, ge.defs...)
		stmts = append(stmts, ge.stmt)
	}
	return
}

// useExpr records reaching definitions for every variable read in e and
// returns the definition nodes the expression's value depends on.
func (b *builder) useExpr(e ir.Expr) []*Node {
	var out []*Node
	ir.WalkExpr(e, func(x ir.Expr) {
		switch r := x.(type) {
		case *ir.VarRef:
			d := b.lookup(r.Sym)
			b.g.UseDefs[x] = []*Node{d}
			out = append(out, d)
		case *ir.ArrayRef:
			d := b.lookup(r.Sym)
			b.g.UseDefs[x] = []*Node{d}
			out = append(out, d)
		}
	})
	return out
}

func (b *builder) attachCtrl(n *Node) {
	defs, stmts := b.ctrl()
	n.Ctrl = defs
	n.CtrlStmts = stmts
}

func (b *builder) walk(stmts []ir.Stmt) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ir.Assign:
			ops := b.useExpr(st.Rhs)
			if ar, ok := st.Lhs.(*ir.ArrayRef); ok {
				for _, ix := range ar.Idx {
					ops = append(ops, b.useExpr(ix)...)
				}
				// Weak update: the previous array value flows through.
				ops = append(ops, b.lookup(ar.Sym))
				n := b.g.newNode(KDef, b.proc.Name, b.g.Canon(ar.Sym), s, st.Pos.Line)
				n.Ops = ops
				n.Weak = true
				b.attachCtrl(n)
				b.define(ar.Sym, n)
			} else {
				n := b.g.newNode(KDef, b.proc.Name, b.g.Canon(st.Lhs.Symbol()), s, st.Pos.Line)
				n.Ops = ops
				b.attachCtrl(n)
				b.define(st.Lhs.Symbol(), n)
			}
		case *ir.If:
			condDefs := b.useExpr(st.Cond)
			b.guard = append(b.guard, guardEntry{stmt: s, defs: condDefs})
			thenB := b.fork()
			thenB.walk(st.Then)
			elseB := b.fork()
			elseB.walk(st.Else)
			b.guard = b.guard[:len(b.guard)-1]
			b.join(s, thenB, elseB, condDefs)
		case *ir.DoLoop:
			b.walkLoop(st)
		case *ir.Call:
			b.walkCall(st)
		case *ir.IO:
			for _, a := range st.Args {
				if st.Write {
					b.useExpr(a)
					continue
				}
				if r, ok := a.(ir.Ref); ok {
					var ops []*Node
					if ar, ok2 := r.(*ir.ArrayRef); ok2 {
						for _, ix := range ar.Idx {
							ops = append(ops, b.useExpr(ix)...)
						}
						ops = append(ops, b.lookup(ar.Sym))
					}
					n := b.g.newNode(KDef, b.proc.Name, b.g.Canon(r.Symbol()), s, st.Pos.Line)
					n.Ops = ops
					n.Weak = r.Symbol().IsArray()
					b.attachCtrl(n)
					b.define(r.Symbol(), n)
				} else {
					b.useExpr(a)
				}
			}
		case *ir.Continue, *ir.Return, *ir.Stop:
		}
	}
}

func (b *builder) fork() *builder {
	env := make(map[*ir.Symbol]*Node, len(b.env))
	for k, v := range b.env {
		env[k] = v
	}
	return &builder{g: b.g, proc: b.proc, env: env, guard: b.guard}
}

// join merges two branch environments with φ nodes.
func (b *builder) join(at ir.Stmt, thenB, elseB *builder, condDefs []*Node) {
	syms := map[*ir.Symbol]bool{}
	for s := range thenB.env {
		syms[s] = true
	}
	for s := range elseB.env {
		syms[s] = true
	}
	for sym := range syms {
		td, ed := thenB.env[sym], elseB.env[sym]
		if td == nil {
			td = b.env[sym]
		}
		if ed == nil {
			ed = b.env[sym]
		}
		if td == ed {
			if td != nil {
				b.env[sym] = td
			}
			continue
		}
		phi := b.g.newNode(KPhi, b.proc.Name, sym, at, at.Position().Line)
		if td != nil {
			phi.Ops = append(phi.Ops, td)
		}
		if ed != nil {
			phi.Ops = append(phi.Ops, ed)
		}
		phi.Ctrl = condDefs
		phi.CtrlStmts = []ir.Stmt{at}
		b.env[sym] = phi
	}
}

func (b *builder) walkLoop(l *ir.DoLoop) {
	boundDefs := b.useExpr(l.Lo)
	boundDefs = append(boundDefs, b.useExpr(l.Hi)...)
	if l.Step != nil {
		boundDefs = append(boundDefs, b.useExpr(l.Step)...)
	}
	idx := b.g.newNode(KIndex, b.proc.Name, b.g.Canon(l.Index), l, l.Pos.Line)
	idx.Ops = boundDefs
	b.attachCtrl(idx)

	// Header φ for every variable the body may modify.
	modified := b.g.MR.ModifiedScalars(b.proc, l.Body)
	// Arrays and call-modified variables too.
	ir.WalkStmts(l.Body, func(s ir.Stmt) bool {
		switch st := s.(type) {
		case *ir.Assign:
			if st.Lhs.Symbol().IsArray() {
				modified[st.Lhs.Symbol()] = true
			}
		case *ir.Call:
			for _, m := range b.g.MR.CallMods(b.proc, st) {
				modified[m] = true
			}
		case *ir.IO:
			if !st.Write {
				for _, a := range st.Args {
					if r, ok := a.(ir.Ref); ok {
						modified[r.Symbol()] = true
					}
				}
			}
		}
		return true
	})
	phis := map[*ir.Symbol]*Node{}
	for sym := range modified {
		if sym == l.Index {
			continue
		}
		phi := b.g.newNode(KPhi, b.proc.Name, b.g.Canon(sym), l, l.Pos.Line)
		phi.Ops = append(phi.Ops, b.lookup(sym))
		phi.Ctrl = boundDefs
		phi.CtrlStmts = []ir.Stmt{l}
		phis[b.g.Canon(sym)] = phi
		b.define(sym, phi)
	}
	b.define(l.Index, idx)

	b.guard = append(b.guard, guardEntry{stmt: l, defs: append(boundDefs, idx)})
	body := b.fork()
	body.walk(l.Body)
	b.guard = b.guard[:len(b.guard)-1]

	// Backpatch: the φ's second operand is the body's final definition.
	for sym, phi := range phis {
		if fin := body.env[sym]; fin != nil && fin != phi {
			phi.Ops = append(phi.Ops, fin)
		}
		b.env[sym] = phi
	}
}

func (b *builder) walkCall(c *ir.Call) {
	callee := b.g.Prog.ByName[c.Name]
	if callee == nil {
		return
	}
	ins := b.g.FormalIn[c.Name]
	finals := b.g.FinalDef[c.Name]
	// Bind formal-in φ operands for parameters.
	for i, f := range callee.Params {
		if i >= len(c.Args) {
			break
		}
		arg := c.Args[i]
		var defs []*Node
		switch x := arg.(type) {
		case *ir.VarRef:
			defs = b.useExpr(x)
		case *ir.ArrayRef:
			for _, ix := range x.Idx {
				defs = append(defs, b.useExpr(ix)...)
			}
			defs = append(defs, b.lookup(x.Sym))
			b.g.UseDefs[arg] = []*Node{b.lookup(x.Sym)}
		default:
			defs = b.useExpr(arg)
		}
		if in := ins[f]; in != nil {
			b.g.Bindings[in] = append(b.g.Bindings[in], Binding{Call: c, Defs: defs})
		}
	}
	// Bind common variables the callee touches.
	for _, sym := range b.g.touched[c.Name] {
		if in := ins[sym]; in != nil {
			b.g.Bindings[in] = append(b.g.Bindings[in], Binding{Call: c, Defs: []*Node{b.lookup(sym)}})
		}
	}
	ctrlDefs, ctrlStmts := b.ctrl()
	// Return edges: every variable the callee may modify gets a call-out def.
	mods := b.g.MR.Effects[c.Name]
	for i, f := range callee.Params {
		if i >= len(c.Args) || i >= len(mods.ModParam) || !mods.ModParam[i] {
			continue
		}
		base := modref.BaseSymbol(c.Args[i])
		if base == nil {
			continue
		}
		out := b.g.newNode(KCallOut, b.proc.Name, b.g.Canon(base), c, c.Pos.Line)
		if fin := finals[f]; fin != nil {
			out.CalleeFinal = []*Node{fin}
		}
		out.Ctrl = ctrlDefs
		out.CtrlStmts = ctrlStmts
		b.define(base, out)
	}
	for _, sym := range b.g.touched[c.Name] {
		if !calleeModsCommon(mods, sym) {
			continue
		}
		out := b.g.newNode(KCallOut, b.proc.Name, sym, c, c.Pos.Line)
		if fin := finals[sym]; fin != nil {
			out.CalleeFinal = []*Node{fin}
		}
		out.Ctrl = ctrlDefs
		out.CtrlStmts = ctrlStmts
		b.define(sym, out)
	}
}

func calleeModsCommon(eff *modref.Effects, sym *ir.Symbol) bool {
	for _, r := range eff.ModCommon[sym.Common] {
		if r.Lo <= sym.CommonOffset+sym.NElems()-1 && sym.CommonOffset <= r.Hi {
			return true
		}
	}
	return false
}

// DefsOf returns the reaching definitions recorded for a use expression.
func (g *Graph) DefsOf(e ir.Expr) []*Node { return g.UseDefs[e] }

// FindUse locates, in proc, a use of the named variable at the given source
// line, returning its recorded reaching defs (nil if none).
func (g *Graph) FindUse(proc, name string, line int) []*Node {
	p := g.Prog.ByName[proc]
	if p == nil {
		return nil
	}
	var found []*Node
	seen := map[*Node]bool{}
	add := func(defs []*Node) {
		for _, d := range defs {
			if !seen[d] {
				seen[d] = true
				found = append(found, d)
			}
		}
	}
	ir.WalkStmts(p.Body, func(s ir.Stmt) bool {
		// WalkExprs pre-orders every sub-expression already.
		ir.WalkExprs(s, func(x ir.Expr) {
			if x.Position().Line != line {
				return
			}
			switch r := x.(type) {
			case *ir.VarRef:
				if r.Sym.Name == name {
					add(g.UseDefs[x])
				}
			case *ir.ArrayRef:
				if r.Sym.Name == name {
					add(g.UseDefs[x])
				}
			}
		})
		return true
	})
	return found
}

// NodesAtLine returns all definitions created for a source line.
func (g *Graph) NodesAtLine(proc string, line int) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Proc == proc && n.Line == line {
			out = append(out, n)
		}
	}
	return out
}
