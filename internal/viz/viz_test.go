package viz

import (
	"strings"
	"testing"

	"suifx/internal/minif"
	"suifx/internal/parallel"
)

const src = `
      SUBROUTINE leaf
      INTEGER i
      REAL w(10)
      DO 5 i = 1, 10
        w(i) = i * 1.0
5     CONTINUE
      END
      PROGRAM main
      REAL a(50)
      INTEGER i
      DO 10 i = 2, 50
        a(i) = a(i-1) + 1.0
10    CONTINUE
      DO 20 i = 1, 50
        a(i) = a(i) * 2.0
20    CONTINUE
      CALL leaf
      END
`

func setup(t *testing.T) (*parallel.Result, *Codeview) {
	t.Helper()
	prog := minif.MustParse("v", src)
	res := parallel.Parallelize(prog, parallel.Config{UseReductions: true})
	return res, &Codeview{Prog: prog, Par: res}
}

func TestCodeviewClasses(t *testing.T) {
	res, cv := setup(t)
	out := cv.Render()
	lines := strings.Split(out, "\n")
	glyphAt := func(srcLine int) byte {
		for _, l := range lines {
			trimmed := strings.TrimLeft(l, " ")
			if strings.HasPrefix(trimmed, itoa(srcLine)+" ") {
				rest := strings.TrimSpace(strings.TrimPrefix(trimmed, itoa(srcLine)))
				if len(rest) > 0 {
					return rest[0]
				}
			}
		}
		return 0
	}
	// The recurrence (MAIN/10, lines 12..14) renders sequential '#'.
	if g := glyphAt(13); g != '#' {
		t.Fatalf("line 13 glyph = %q, want '#'", string(g))
	}
	// The parallel loop (MAIN/20) renders 'o'.
	if g := glyphAt(16); g != 'o' {
		t.Fatalf("line 16 glyph = %q, want 'o'", string(g))
	}
	_ = res
}

func TestCodeviewFocusAndFilter(t *testing.T) {
	res, cv := setup(t)
	cv.FocusLoop = "MAIN/10"
	out := cv.Render()
	if !strings.Contains(out, ">") {
		t.Fatal("focus bar missing")
	}
	cv2 := &Codeview{Prog: res.Prog, Par: res,
		Filter: func(li *parallel.LoopInfo) bool { return true }}
	out2 := cv2.Render()
	if !strings.Contains(out2, ":") {
		t.Fatal("filtered glyph missing")
	}
	if strings.Contains(out2, "o") || strings.Contains(out2, "#") {
		t.Fatal("all loops filtered: no loop glyphs expected")
	}
}

func TestCallGraphFocus(t *testing.T) {
	res, _ := setup(t)
	cg := &CallGraph{Prog: res.Prog, Focus: "LEAF",
		Weight: func(p string) string { return "(w)" }}
	out := cg.Render()
	if !strings.Contains(out, "* LEAF (w)") {
		t.Fatalf("focus/weight rendering:\n%s", out)
	}
	if !strings.Contains(out, "MAIN") {
		t.Fatal("root missing")
	}
}

func TestSourceViewRange(t *testing.T) {
	res, _ := setup(t)
	sv := &SourceView{Prog: res.Prog, From: 12, To: 14,
		Highlight: map[int]bool{13: true}, Anchor: 12,
		Verdicts: map[int]string{12: "SEQUENTIAL"}}
	out := sv.Render()
	if !strings.Contains(out, ">   12") || !strings.Contains(out, "*   13") {
		t.Fatalf("markers:\n%s", out)
	}
	if !strings.Contains(out, "! SEQUENTIAL") {
		t.Fatal("verdict annotation missing")
	}
	if strings.Contains(out, "   15 ") {
		t.Fatal("out-of-range line rendered")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
