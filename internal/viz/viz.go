// Package viz renders the Rivet visualization metaphors of §2.7 as text:
// the Codeview "bird's-eye" line map (filtered loops gray, sequential loops
// black, parallel loops white, a focus bar on the Guru's candidate), a
// focus-plus-context call-graph browser standing in for the hyperbolic
// viewer, and an annotated source viewer that can highlight slice lines.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"suifx/internal/ir"
	"suifx/internal/parallel"
)

// LineClass is a Codeview line's rendering class.
type LineClass int

const (
	// Plain code outside any loop.
	Plain LineClass = iota
	// Filtered loops fall below the depth/granularity/time cutoffs.
	Filtered
	// Sequential loops are unfiltered and unparallelized.
	Sequential
	// Parallel loops were parallelized.
	Parallel
	// Focus marks the selected hand-parallelization candidate.
	Focus
)

var classGlyph = map[LineClass]byte{
	Plain:      '.',
	Filtered:   ':',
	Sequential: '#',
	Parallel:   'o',
	Focus:      '>',
}

// Codeview renders the bird's-eye view: one row per source line, one glyph
// per run of characters, classed by the loops covering the line.
type Codeview struct {
	Prog *ir.Program
	Par  *parallel.Result
	// Filter reports whether a loop should be grayed out (nil = show all).
	Filter func(li *parallel.LoopInfo) bool
	// FocusLoop is the white focus bar target (loop ID).
	FocusLoop string
	// Columns scales the rendering (glyphs per 4 source characters).
	Columns int
}

// classify assigns each source line its class.
func (cv *Codeview) classify() map[int]LineClass {
	out := map[int]LineClass{}
	mark := func(lo, hi int, c LineClass) {
		for l := lo; l <= hi; l++ {
			if out[l] < c {
				out[l] = c
			}
		}
	}
	for _, li := range cv.Par.Ordered {
		lo, hi := li.Region.Lines()
		switch {
		case li.ID() == cv.FocusLoop:
			mark(lo, hi, Focus)
		case cv.Filter != nil && cv.Filter(li):
			mark(lo, hi, Filtered)
		case li.Chosen || li.Dep.Parallelizable:
			mark(lo, hi, Parallel)
		default:
			mark(lo, hi, Sequential)
		}
	}
	return out
}

// Render returns the Codeview text.
func (cv *Codeview) Render() string {
	cols := cv.Columns
	if cols <= 0 {
		cols = 4
	}
	classes := cv.classify()
	var b strings.Builder
	for i, text := range cv.Prog.Source {
		line := i + 1
		n := (len(strings.TrimRight(text, " \t")) + cols - 1) / cols
		if n == 0 {
			b.WriteString("\n")
			continue
		}
		g := classGlyph[classes[line]]
		fmt.Fprintf(&b, "%4d %s\n", line, strings.Repeat(string(g), n))
	}
	return b.String()
}

// CallGraph renders a focus-plus-context call-graph browser: the focused
// procedure expands fully, everything else collapses beyond depth 1 (the
// text analogue of the hyperbolic viewer).
type CallGraph struct {
	Prog  *ir.Program
	Focus string
	// Weight optionally annotates nodes (e.g. execution time share).
	Weight func(proc string) string
}

// Render returns the browser text, rooted at the main program.
func (cg *CallGraph) Render() string {
	var b strings.Builder
	graph := cg.Prog.CallGraph()
	main := cg.Prog.Main()
	if main == nil {
		return ""
	}
	onFocusPath := map[string]bool{}
	if cg.Focus != "" {
		var mark func(n string) bool
		seen := map[string]bool{}
		mark = func(n string) bool {
			if seen[n] {
				return onFocusPath[n]
			}
			seen[n] = true
			hit := n == cg.Focus
			for _, c := range graph[n] {
				if mark(c) {
					hit = true
				}
			}
			onFocusPath[n] = hit
			return hit
		}
		mark(main.Name)
	}
	var rec func(n string, depth int, visited map[string]bool)
	rec = func(n string, depth int, visited map[string]bool) {
		label := n
		if cg.Weight != nil {
			if w := cg.Weight(n); w != "" {
				label += " " + w
			}
		}
		marker := "  "
		if n == cg.Focus {
			marker = "* "
		}
		fmt.Fprintf(&b, "%s%s%s\n", strings.Repeat("  ", depth), marker, label)
		if visited[n] {
			return
		}
		visited[n] = true
		expand := cg.Focus == "" || onFocusPath[n] || depth < 1
		children := append([]string(nil), graph[n]...)
		sort.Strings(children)
		for _, c := range children {
			if expand {
				rec(c, depth+1, visited)
			} else {
				fmt.Fprintf(&b, "%s  %s ...\n", strings.Repeat("  ", depth+1), c)
			}
		}
	}
	rec(main.Name, 0, map[string]bool{})
	return b.String()
}

// SourceView renders annotated source: slice lines marked with '*', the
// queried reference with '>', loop headers with their parallelization
// verdicts.
type SourceView struct {
	Prog *ir.Program
	// Highlight marks lines (e.g. a program slice).
	Highlight map[int]bool
	// Anchor is the queried reference's line.
	Anchor int
	// From..To bound the display (0 = whole file).
	From, To int
	// Verdicts annotates loop header lines.
	Verdicts map[int]string
}

// Render returns the annotated source text.
func (sv *SourceView) Render() string {
	from, to := sv.From, sv.To
	if from <= 0 {
		from = 1
	}
	if to <= 0 || to > len(sv.Prog.Source) {
		to = len(sv.Prog.Source)
	}
	var b strings.Builder
	for line := from; line <= to; line++ {
		mark := " "
		if sv.Highlight[line] {
			mark = "*"
		}
		if line == sv.Anchor {
			mark = ">"
		}
		text := sv.Prog.SourceLine(line)
		fmt.Fprintf(&b, "%s%5d %s", mark, line, text)
		if v := sv.Verdicts[line]; v != "" {
			fmt.Fprintf(&b, "   ! %s", v)
		}
		b.WriteString("\n")
	}
	return b.String()
}
