// Golden tune-report snapshots. Because a search over a fixed (program,
// config) is byte-deterministic — virtual-time scores, canonical enumeration
// order, no timestamps — the full JSON report can be pinned verbatim. Any
// change to the scoring model, the pruning rules, or the report shape shows
// up as a readable diff here; refresh intentionally with
//
//	go test ./internal/tune -run TestGolden -update
package tune_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/experiments"
	"suifx/internal/tune"
)

var update = flag.Bool("update", false, "rewrite golden tune reports")

// checkGolden compares the report's indented JSON against testdata/<name>,
// rewriting it under -update.
func checkGolden(t *testing.T, name string, rep *tune.Report) {
	t.Helper()
	got, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report differs from %s (rerun with -update if the change is intended)\ngot:\n%s", path, got)
	}
}

// TestGoldenWorkloadReports pins the full audit trail for the Chapter 4
// flagship and one Nanz kernel.
func TestGoldenWorkloadReports(t *testing.T) {
	for _, app := range []string{"mdg", "chain"} {
		app := app
		t.Run(app, func(t *testing.T) {
			rep, _, err := experiments.TuneApp(context.Background(), app, tune.Config{MaxDepth: 1})
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "tune_"+app+".golden.json", rep)
		})
	}
}

// TestGoldenCorpusReport pins a corpus-seeded search: the 1k scale tier
// regenerates bit-for-bit from its recorded (seed, config), so its tune
// report is as stable as the hand-written workloads'.
func TestGoldenCorpusReport(t *testing.T) {
	tier, ok := corpus.TierByName("1k")
	if !ok {
		t.Fatal("no 1k corpus tier")
	}
	rep, _ := corpusSearch(t, tier, corpusTuneCfg())
	checkGolden(t, "tune_corpus_1k.golden.json", rep)
}
