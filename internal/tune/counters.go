package tune

import "sync/atomic"

// counters aggregates package-wide search telemetry for /v1/stats.
var counters struct {
	searches  atomic.Int64
	runs      atomic.Int64
	scored    atomic.Int64
	pruned    atomic.Int64
	exhausted atomic.Int64
	cancelled atomic.Int64
	failed    atomic.Int64
	invalid   atomic.Int64
}

// Counters is a snapshot of the package counters.
type Counters struct {
	// Searches counts Search calls that passed config validation.
	Searches int64 `json:"searches"`
	// Runs counts VM executions (baselines + variant plans).
	Runs int64 `json:"runs"`
	// Scored and Pruned count enumerated variants by fate.
	Scored int64 `json:"variants_scored"`
	Pruned int64 `json:"variants_pruned"`
	// Exhausted counts searches cut short by the run budget.
	Exhausted int64 `json:"budget_exhausted"`
	// Cancelled counts searches abandoned via context.
	Cancelled int64 `json:"cancelled"`
	// Failed counts searches aborted by an engine error.
	Failed int64 `json:"failed"`
	// Invalid counts configs rejected by validation.
	Invalid int64 `json:"invalid_configs"`
}

// ReadCounters returns a point-in-time snapshot.
func ReadCounters() Counters {
	return Counters{
		Searches:  counters.searches.Load(),
		Runs:      counters.runs.Load(),
		Scored:    counters.scored.Load(),
		Pruned:    counters.pruned.Load(),
		Exhausted: counters.exhausted.Load(),
		Cancelled: counters.cancelled.Load(),
		Failed:    counters.failed.Load(),
		Invalid:   counters.invalid.Load(),
	}
}
