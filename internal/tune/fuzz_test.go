// FuzzTuneConfig drives the tuner's knob space with hostile inputs: invalid
// and duplicate worker counts, out-of-range depths, zero and negative run
// budgets, and degenerate trip counts (zero-trip, negative-step and
// non-terminating loops bounded by the op budget) — over both a templated
// reduction kernel and corpus-seeded differential programs. The contract
// under fuzz: Search either rejects the input with an error and no report,
// or returns a report that satisfies the property-suite invariants and is
// byte-deterministic. It must never panic or hang.
package tune_test

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/minif"
	"suifx/internal/parallel"
	"suifx/internal/tune"
)

// fuzzKernel is the templated program: a scalar-reduction loop whose bounds
// come straight from the fuzzer, so trip counts can be empty, huge, or
// infinite (caught by the op budget).
const fuzzKernel = `
      PROGRAM fz
      REAL a(64), s
      INTEGER i
      DO 5 i = 1, 64
        a(i) = i * 0.5
5     CONTINUE
      DO 10 i = %d, %d, %d
        s = s + 2.5
10    CONTINUE
      END
`

func FuzzTuneConfig(f *testing.F) {
	// Seed corpus: a healthy search, each invalid-knob class, and the
	// degenerate trip shapes.
	f.Add(int64(1), false, 1, 2, 4, 1, 0, 4, 4, 1, 64, 1)    // valid, full space
	f.Add(int64(2), false, 0, 2, 4, 0, 0, 4, 4, 1, 64, 1)    // worker count 0
	f.Add(int64(3), false, 2, 2, 4, 0, 0, 4, 4, 1, 64, 1)    // duplicate workers
	f.Add(int64(4), false, 1, 2, 200, 0, 0, 4, 4, 1, 64, 1)  // worker beyond cap
	f.Add(int64(5), false, 1, 2, 4, 99, 0, 4, 4, 1, 64, 1)   // absurd depth
	f.Add(int64(6), false, 1, 2, 4, 1, -7, 4, 4, 1, 64, 1)   // negative budget
	f.Add(int64(7), false, 1, 2, 4, 1, 1, 4, 4, 1, 64, 1)    // one-run budget
	f.Add(int64(8), false, 1, 2, 4, 0, 0, 0, 0, 1, 64, 1)    // zeroed defaults
	f.Add(int64(9), false, 1, 2, 4, 0, 0, 4, 4, 64, 1, 1)    // zero-trip loop
	f.Add(int64(10), false, 1, 2, 4, 0, 0, 4, 4, 64, 1, -1)  // negative step
	f.Add(int64(11), false, 1, 2, 4, 0, 0, 4, 4, 1, 64, 0)   // step 0: op budget stops it
	f.Add(int64(12), true, 1, 2, 4, 1, 0, 4, 4, 1, 64, 1)    // corpus differential program
	f.Add(int64(99), true, 1, 4, 8, 0, 3, 2, 2, 1, 64, 1)    // corpus, budgeted

	f.Fuzz(func(t *testing.T, seed int64, useCorpus bool,
		w1, w2, w3, depth, runs, defW, chunks, lo, hi, step int) {
		var src string
		if useCorpus {
			src = corpus.DiffProgram(seed)
		} else {
			src = fmt.Sprintf(fuzzKernel, lo%1024, hi%1024, step%7)
		}
		prog, err := minif.Parse("fz", src)
		if err != nil {
			t.Skip() // bounds the grammar rejects (only the templated kernel)
		}
		res := parallel.Parallelize(prog, parallel.Config{UseReductions: true})
		cfg := tune.Config{
			Workers:        []int{w1, w2, w3},
			MaxDepth:       depth,
			MaxRuns:        runs,
			DefaultWorkers: defW,
			Chunks:         chunks,
			// Hard ceiling so non-terminating fuzz loops stop in bounded
			// virtual time instead of hanging the fuzzer.
			MaxOps: 2_000_000,
		}
		rep, err := tune.Search(context.Background(), res, cfg)
		if err != nil {
			if rep != nil {
				t.Fatalf("error %v with a non-nil report", err)
			}
			return // rejected knobs or op-budget stop: the graceful paths
		}
		space := enumeratedSpace(cfg)
		for _, lr := range rep.Loops {
			if lr.Speedup < 1 {
				t.Errorf("%s: speedup %.4f < 1", lr.ID, lr.Speedup)
			}
			if lr.Chosen.Cycles > lr.Default.Cycles {
				t.Errorf("%s: chosen cycles %.0f > default %.0f", lr.ID, lr.Chosen.Cycles, lr.Default.Cycles)
			}
			if got := len(lr.Searched) + lr.Pruned; got != space {
				t.Errorf("%s: audit trail covers %d variants, enumerated space is %d", lr.ID, got, space)
			}
		}
		if rep.Speedup < 1 {
			t.Errorf("program speedup %.4f < 1", rep.Speedup)
		}
		if cfg.MaxRuns > 0 && rep.Runs > cfg.MaxRuns {
			t.Errorf("runs %d exceed budget %d", rep.Runs, cfg.MaxRuns)
		}
		// Determinism: a second search over the same inputs is byte-identical.
		rep2, err := tune.Search(context.Background(), res, cfg)
		if err != nil {
			t.Fatalf("repeat search failed: %v", err)
		}
		a, _ := json.Marshal(rep)
		b, _ := json.Marshal(rep2)
		if string(a) != string(b) {
			t.Errorf("repeated searches differ:\n%s\n--\n%s", a, b)
		}
	})
}
