package tune_test

import (
	"context"
	"encoding/json"
	"testing"

	"suifx/internal/experiments"
	"suifx/internal/tune"
)

// TestSearchSmoke pins the basic shape of an mdg search: every nest gets a
// default and a chosen score, the chosen never models slower than the
// default, and the audit trail accounts for the whole enumerated space.
func TestSearchSmoke(t *testing.T) {
	rep, _, err := experiments.TuneApp(context.Background(), "mdg", tune.Config{})
	if err != nil {
		t.Fatalf("TuneApp: %v", err)
	}
	if len(rep.Loops) == 0 {
		t.Fatal("no tuned loops")
	}
	if rep.Runs == 0 || rep.Searched == 0 {
		t.Fatalf("empty search: runs=%d searched=%d", rep.Runs, rep.Searched)
	}
	b, _ := json.MarshalIndent(rep, "", "  ")
	t.Logf("report:\n%s", b)
	for _, lr := range rep.Loops {
		if lr.Speedup < 1 {
			t.Errorf("loop %s: speedup %.3f < 1", lr.ID, lr.Speedup)
		}
		enumerated := len(lr.Searched) + lr.Pruned
		if enumerated == 0 {
			t.Errorf("loop %s: empty audit trail", lr.ID)
		}
	}
	if rep.Speedup < 1 {
		t.Errorf("program speedup %.3f < 1", rep.Speedup)
	}
}
