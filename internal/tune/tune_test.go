// The tuner property suite. Three properties anchor it (the test-archetype
// contract of this PR):
//
//  1. The chosen plan never models worse than the default plan — for every
//     nest of every workload the search touches.
//  2. Every enumerated variant is semantics-preserving: executed under the
//     existing differential masks it reproduces the sequential answer.
//  3. The search is deterministic for a fixed (program, config): repeated
//     runs marshal byte-identically, budgeted or not.
//
// The suite sweeps every built-in workload (the 18 parallel ones, which
// include the full Nanz multicore suite) plus the corpus quick-ladder tiers.
package tune_test

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/exec"
	"suifx/internal/experiments"
	"suifx/internal/minif"
	"suifx/internal/parallel"
	"suifx/internal/tune"
	"suifx/internal/workloads"
)

// tuned is one workload's search outcome plus the result it searched.
type tuned struct {
	rep *tune.Report
	res *parallel.Result
}

var (
	sweepOnce sync.Once
	sweep     map[string]tuned
	sweepErrs map[string]error
)

// tunedAll runs the default-config search over every built-in workload once
// per test binary and caches the outcomes. Workloads with no approved nest
// are dropped (there is nothing to tune).
func tunedAll(t *testing.T) map[string]tuned {
	t.Helper()
	sweepOnce.Do(func() {
		sweep = map[string]tuned{}
		sweepErrs = map[string]error{}
		for _, w := range workloads.All() {
			rep, res, err := experiments.TuneApp(context.Background(), w.Name, tune.Config{})
			if err != nil {
				sweepErrs[w.Name] = err
				continue
			}
			if len(rep.Loops) == 0 {
				continue
			}
			sweep[w.Name] = tuned{rep, res}
		}
	})
	for name, err := range sweepErrs {
		t.Fatalf("TuneApp(%s): %v", name, err)
	}
	return sweep
}

// enumeratedSpace is the per-nest variant-space size for a defaulted config:
// every audit trail must account for exactly this many variants as either
// searched or pruned.
func enumeratedSpace(cfg tune.Config) int {
	workers := len(cfg.Workers)
	if workers == 0 {
		workers = 4 // default {1,2,4,8}
	}
	return workers * (cfg.MaxDepth + 1) * len(exec.Schedules()) * 2
}

// TestChosenNeverWorse is property 1 over the whole workload set: the search
// must find at least the 18 known-parallel workloads, and on every one of
// them the chosen variant's modeled cycles never exceed the default's — per
// nest and for the whole program — with a complete audit trail.
func TestChosenNeverWorse(t *testing.T) {
	all := tunedAll(t)
	if len(all) < 18 {
		var names []string
		for n := range all {
			names = append(names, n)
		}
		t.Fatalf("only %d workloads produced tunable nests (want >= 18): %v", len(all), names)
	}
	for _, w := range workloads.Suite("nanz") {
		if _, ok := all[w.Name]; !ok {
			t.Errorf("nanz workload %s missing from the tuned sweep", w.Name)
		}
	}
	space := enumeratedSpace(tune.Config{})
	for name, tu := range all {
		rep := tu.rep
		if rep.BudgetExhausted {
			t.Errorf("%s: unbudgeted search reported budget exhaustion", name)
		}
		for _, lr := range rep.Loops {
			if lr.Chosen.Cycles > lr.Default.Cycles {
				t.Errorf("%s %s: chosen cycles %.0f > default %.0f", name, lr.ID, lr.Chosen.Cycles, lr.Default.Cycles)
			}
			if lr.Speedup < 1 {
				t.Errorf("%s %s: speedup %.4f < 1", name, lr.ID, lr.Speedup)
			}
			if got := len(lr.Searched) + lr.Pruned; got != space {
				t.Errorf("%s %s: audit trail covers %d variants, enumerated space is %d", name, lr.ID, got, space)
			}
		}
		if rep.Speedup < 1 {
			t.Errorf("%s: program speedup %.4f < 1", name, rep.Speedup)
		}
		if rep.MinLoopSpeedup() < 1 {
			t.Errorf("%s: min loop speedup %.4f < 1", name, rep.MinLoopSpeedup())
		}
	}
}

// TestTunedPlanBitIdentical is property 2 for the winners: the composed
// tuned plan of every parallel workload — Nanz suite included — reproduces
// the sequential answer under the differential masks.
func TestTunedPlanBitIdentical(t *testing.T) {
	for name, tu := range tunedAll(t) {
		plan := tu.rep.BuildPlan(tu.res, tune.Config{})
		if err := experiments.ValidatePlanned(tu.res, plan, exec.ModeBytecode); err != nil {
			t.Errorf("%s: tuned plan diverges from sequential: %v", name, err)
		}
	}
}

// TestEveryVariantBitIdentical is property 2 for the losers too: every
// variant the search scored — every schedule, discipline, worker count and
// interchange depth in the audit trail — must itself be a sound plan.
// W=1 variants lower to the empty plan and are trivially sequential.
func TestEveryVariantBitIdentical(t *testing.T) {
	apps := []string{"mdg", "hydro", "chain", "randmat"}
	if testing.Short() {
		apps = apps[:1]
	}
	all := tunedAll(t)
	for _, name := range apps {
		tu, ok := all[name]
		if !ok {
			t.Fatalf("%s missing from the tuned sweep", name)
		}
		for _, lr := range tu.rep.Loops {
			li := tu.res.LoopByID(lr.ID)
			if li == nil {
				t.Fatalf("%s: loop %s not found in result", name, lr.ID)
			}
			for _, sc := range lr.Searched {
				if sc.Workers <= 1 {
					continue
				}
				plan := tune.VariantPlan(tu.res, li, sc.Variant, 0)
				if plan == nil {
					t.Errorf("%s %s: variant %+v did not lower to a plan", name, lr.ID, sc.Variant)
					continue
				}
				if err := experiments.ValidatePlanned(tu.res, plan, exec.ModeBytecode); err != nil {
					t.Errorf("%s %s variant %+v: diverges from sequential: %v", name, lr.ID, sc.Variant, err)
				}
			}
		}
	}
}

// searchTwice marshals two independent searches of the same (result, config).
func searchTwice(t *testing.T, res *parallel.Result, cfg tune.Config) (a, b []byte) {
	t.Helper()
	for i, out := range []*[]byte{&a, &b} {
		rep, err := tune.Search(context.Background(), res, cfg)
		if err != nil {
			t.Fatalf("search %d: %v", i, err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal %d: %v", i, err)
		}
		*out = data
	}
	return a, b
}

// TestSearchDeterministic is property 3: for a fixed (program, config) the
// report is byte-identical across repeated searches — including under a
// budget, where the same prefix of the run order must execute.
func TestSearchDeterministic(t *testing.T) {
	_, res, err := experiments.TuneApp(context.Background(), "mdg", tune.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []tune.Config{
		{},
		{MaxDepth: 1},
		{MaxRuns: 3},
		{Workers: []int{2, 8}, DefaultWorkers: 2},
	} {
		a, b := searchTwice(t, res, cfg)
		if string(a) != string(b) {
			t.Errorf("cfg %+v: repeated searches differ:\n%s\n--\n%s", cfg, a, b)
		}
	}
}

// TestBudgetExhaustion pins the budget contract: the default plan runs
// first, so one run still yields a report where no nest regresses, the
// report is flagged, and the unexecuted variants are accounted as pruned.
func TestBudgetExhaustion(t *testing.T) {
	_, res, err := experiments.TuneApp(context.Background(), "mdg", tune.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tune.Config{MaxRuns: 1}
	rep, err := tune.Search(context.Background(), res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.BudgetExhausted {
		t.Error("one-run budget on a multi-variant space must report exhaustion")
	}
	if rep.Runs != 1 {
		t.Errorf("runs = %d, want 1", rep.Runs)
	}
	space := enumeratedSpace(cfg)
	for _, lr := range rep.Loops {
		if lr.Speedup < 1 {
			t.Errorf("%s: budgeted speedup %.4f < 1", lr.ID, lr.Speedup)
		}
		if got := len(lr.Searched) + lr.Pruned; got != space {
			t.Errorf("%s: budgeted audit trail covers %d variants, enumerated space is %d", lr.ID, got, space)
		}
		// Only the baseline run executed: any scored variant beyond the
		// default came from the sequential profile (W=1), not a plan run.
		for _, sc := range lr.Searched {
			if sc.Workers > 1 && sc.Variant != lr.Default.Variant {
				t.Errorf("%s: variant %+v scored without a run under a one-run budget", lr.ID, sc.Variant)
			}
		}
	}
}

// TestSearchCancellation pins the context contract: a cancelled search
// returns the context error, no report, and advances the cancelled counter.
func TestSearchCancellation(t *testing.T) {
	_, res, err := experiments.TuneApp(context.Background(), "mdg", tune.Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := tune.ReadCounters()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := tune.Search(ctx, res, tune.Config{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled search returned a report")
	}
	after := tune.ReadCounters()
	if after.Cancelled != before.Cancelled+1 {
		t.Errorf("cancelled counter %d -> %d, want +1", before.Cancelled, after.Cancelled)
	}
}

// TestInvalidConfigs pins Validate coverage: out-of-range knobs are rejected
// before any execution, and the invalid counter advances.
func TestInvalidConfigs(t *testing.T) {
	_, res, err := experiments.TuneApp(context.Background(), "chain", tune.Config{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []tune.Config{
		{Workers: []int{0}},
		{Workers: []int{-2}},
		{Workers: []int{200}},
		{Workers: []int{2, 2}},
		{MaxDepth: -1},
		{MaxDepth: 99},
		{MaxRuns: -1},
		{MaxOps: -5},
		{DefaultWorkers: -1},
		{DefaultWorkers: 1000},
		{Chunks: -3},
	}
	for _, cfg := range bad {
		before := tune.ReadCounters()
		rep, err := tune.Search(context.Background(), res, cfg)
		if err == nil || rep != nil {
			t.Errorf("cfg %+v: want validation error, got rep=%v err=%v", cfg, rep, err)
			continue
		}
		if after := tune.ReadCounters(); after.Invalid != before.Invalid+1 {
			t.Errorf("cfg %+v: invalid counter did not advance", cfg)
		}
	}
}

// corpusSearch generates a recorded corpus tier, parallelizes it, and tunes
// it under cfg — the scale leg of the property suite.
func corpusSearch(t *testing.T, tier corpus.Tier, cfg tune.Config) (*tune.Report, *parallel.Result) {
	t.Helper()
	p := tier.Generate()
	prog, err := minif.Parse(p.Name, p.Source)
	if err != nil {
		t.Fatalf("tier %s: parse: %v", tier.Name, err)
	}
	res := parallel.Parallelize(prog, parallel.Config{UseReductions: true})
	rep, err := tune.Search(context.Background(), res, cfg)
	if err != nil {
		t.Fatalf("tier %s: search: %v", tier.Name, err)
	}
	return rep, res
}

// corpusTuneCfg keeps the corpus sweep affordable: three worker counts over
// the full schedule/discipline space at depth <= 1.
func corpusTuneCfg() tune.Config {
	return tune.Config{Workers: []int{1, 2, 4}, MaxDepth: 1}
}

// TestCorpusQuickTune runs properties 1–3 over the corpus quick-ladder
// tiers: generated thousand-line programs with hundreds of nests, searched,
// validated bit-identical, and re-searched for byte equality.
func TestCorpusQuickTune(t *testing.T) {
	for _, tier := range corpus.QuickLadder() {
		tier := tier
		t.Run(tier.Name, func(t *testing.T) {
			cfg := corpusTuneCfg()
			rep, res := corpusSearch(t, tier, cfg)
			if len(rep.Loops) == 0 {
				t.Fatalf("tier %s: no tunable nests", tier.Name)
			}
			space := enumeratedSpace(cfg)
			for _, lr := range rep.Loops {
				if lr.Speedup < 1 {
					t.Errorf("%s: speedup %.4f < 1", lr.ID, lr.Speedup)
				}
				if got := len(lr.Searched) + lr.Pruned; got != space {
					t.Errorf("%s: audit trail covers %d variants, enumerated space is %d", lr.ID, got, space)
				}
			}
			if rep.Speedup < 1 {
				t.Errorf("program speedup %.4f < 1", rep.Speedup)
			}
			plan := rep.BuildPlan(res, cfg)
			if err := experiments.ValidatePlanned(res, plan, exec.ModeBytecode); err != nil {
				t.Errorf("tuned plan diverges from sequential: %v", err)
			}
			a, b := searchTwice(t, res, cfg)
			if string(a) != string(b) {
				t.Error("repeated corpus searches are not byte-identical")
			}
		})
	}
}
