// Package tune implements the auto-tuning parallelization search: for every
// approved parallelizable loop nest it enumerates strategy variants — worker
// count, §4.5 dispatch schedule, reduction-finalization discipline and
// interchange depth — executes candidate plans on the bytecode engine under
// virtual time, scores each variant with the measured critical-path profile
// combined with the machine cost model, and reports the winning plan per
// nest with a searched/pruned/score audit trail.
//
// SUIF Explorer stops at one approved plan per loop; ComPar-style sweeps
// show no single static choice is best everywhere. Because the engine's
// clock is virtual (operation counts, not wall time) every run is
// deterministic, so the whole sweep is reproducible on one CI core and a
// report for a fixed (program, config) is byte-identical across machines.
package tune

import (
	"context"
	"fmt"
	"sort"

	"suifx/internal/exec"
	"suifx/internal/ir"
	"suifx/internal/machine"
	"suifx/internal/parallel"
)

// Config is the search space and budget for one tuning run. The zero value
// selects the full default space: workers {1,2,4,8}, all three schedules,
// both disciplines, interchange depth ≤ 1, unlimited runs, the AlphaServer
// 8400 cost model, and the bytecode engine.
type Config struct {
	// Workers are the candidate per-loop worker counts. Order matters: it
	// is the tie-break preference and the audit-trail enumeration order.
	Workers []int
	// MaxDepth bounds the interchange knob: depth d parallelizes the d-th
	// singly-nested inner loop where internal/parallel proves it legal.
	MaxDepth int
	// MaxRuns budgets the search: at most MaxRuns plan executions
	// (0 = unlimited). The default plan always runs first, so even an
	// exhausted budget yields a usable (if unimproved) report, flagged
	// BudgetExhausted with the unexecuted variants counted as pruned.
	MaxRuns int
	// DefaultWorkers is the baseline the report's speedups compare against:
	// parallel.BuildPlan(res, DefaultWorkers), i.e. even schedule and
	// staggered finalization. Default 4.
	DefaultWorkers int
	// Chunks is the staggered-finalization chunk count (default 4).
	Chunks int
	// MaxOps bounds each execution's virtual time (0 = unlimited).
	MaxOps int64
	// Mode selects the engine; the default resolves to the bytecode VM.
	Mode exec.ExecMode
	// Model is the cost model scoring overhead terms (default AlphaServer).
	Model *machine.Model
}

// maxWorkerCount bounds a single candidate worker count; wider requests are
// rejected rather than silently clamped, so a fuzzer-shaped config cannot
// allocate absurd per-worker storage banks.
const maxWorkerCount = 64

// maxSearchDepth bounds the interchange knob.
const maxSearchDepth = 8

func (c Config) withDefaults() Config {
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.DefaultWorkers == 0 {
		c.DefaultWorkers = 4
	}
	if c.Chunks == 0 {
		c.Chunks = 4
	}
	if c.Model == nil {
		c.Model = machine.AlphaServer8400()
	}
	return c
}

// Validate rejects configs outside the searchable space. Zero-valued knobs
// are normalized to their defaults first, so a partially-filled config (an
// HTTP request body, say) validates the same way Search will see it. It is
// applied by Search and exercised directly by FuzzTuneConfig.
func (c Config) Validate() error {
	c = c.withDefaults()
	seen := map[int]bool{}
	for _, w := range c.Workers {
		if w < 1 || w > maxWorkerCount {
			return fmt.Errorf("tune: worker count %d out of range [1,%d]", w, maxWorkerCount)
		}
		if seen[w] {
			return fmt.Errorf("tune: duplicate worker count %d", w)
		}
		seen[w] = true
	}
	if c.MaxDepth < 0 || c.MaxDepth > maxSearchDepth {
		return fmt.Errorf("tune: max depth %d out of range [0,%d]", c.MaxDepth, maxSearchDepth)
	}
	if c.MaxRuns < 0 {
		return fmt.Errorf("tune: negative run budget %d", c.MaxRuns)
	}
	if c.DefaultWorkers < 1 || c.DefaultWorkers > maxWorkerCount {
		return fmt.Errorf("tune: default worker count %d out of range [1,%d]", c.DefaultWorkers, maxWorkerCount)
	}
	if c.Chunks < 1 {
		return fmt.Errorf("tune: chunk count %d < 1", c.Chunks)
	}
	if c.MaxOps < 0 {
		return fmt.Errorf("tune: negative op budget %d", c.MaxOps)
	}
	if c.Model != nil && c.Model.Procs < 1 {
		return fmt.Errorf("tune: machine model %q has %d processors", c.Model.Name, c.Model.Procs)
	}
	return nil
}

// Variant is one point of the per-nest search space.
type Variant struct {
	Workers   int    `json:"workers"`
	Schedule  string `json:"schedule"`
	Staggered bool   `json:"staggered"`
	Depth     int    `json:"depth"`
}

// Score is a variant plus its measured virtual-time profile and modeled
// cost. CritOps/WorkerOps/Invocations come from the §4.5 dispatcher's
// schedule stats for the planned loop of the variant's run; Cycles folds
// them through the machine model (bus contention, spawn, reduction
// init/finalize, private init/write-back). Lower Cycles wins.
type Score struct {
	Variant
	Invocations int64   `json:"invocations"`
	WorkerOps   int64   `json:"worker_ops"`
	CritOps     int64   `json:"crit_ops"`
	Cycles      float64 `json:"cycles"`
}

// LoopReport is one nest's audit trail: every variant actually scored (in
// enumeration order), how many were pruned (illegal depth, worker count
// beyond the machine, discipline without a reduction, W=1 duplicates, or
// budget cuts), and the chosen-vs-default verdict.
type LoopReport struct {
	ID     string `json:"id"`
	Line   int    `json:"line"`
	Index  string `json:"index"`
	SeqOps int64  `json:"seq_ops"`
	// Depths lists the legal interchange depths (always starts with 0).
	Depths   []int   `json:"depths"`
	Searched []Score `json:"searched"`
	Pruned   int     `json:"pruned"`
	Default  Score   `json:"default"`
	Chosen   Score   `json:"chosen"`
	// Speedup is Default.Cycles / Chosen.Cycles. The default variant is in
	// the candidate set, so this is ≥ 1 by construction.
	Speedup float64 `json:"speedup"`
}

// Report is a whole-program tuning verdict. It contains no timestamps or
// host-dependent fields: repeated searches over the same (program, config)
// marshal byte-identically.
type Report struct {
	Machine        string `json:"machine"`
	Mode           string `json:"mode"`
	DefaultWorkers int    `json:"default_workers"`
	// SeqOps is the sequential baseline's total virtual time.
	SeqOps int64 `json:"seq_ops"`
	// Runs counts plan executions (the profiled sequential baseline is not
	// a plan run and is excluded; W=1 variants are scored from the baseline
	// profile without a run of their own).
	Runs            int  `json:"runs"`
	Searched        int  `json:"searched"`
	Pruned          int  `json:"pruned"`
	BudgetExhausted bool `json:"budget_exhausted"`
	// DefaultCycles/ChosenCycles are modeled whole-program costs: serial
	// ops outside the tuned nests plus each nest under the default/chosen
	// variant. Speedup = DefaultCycles/ChosenCycles (≥ 1 by construction).
	DefaultCycles float64      `json:"default_cycles"`
	ChosenCycles  float64      `json:"chosen_cycles"`
	Speedup       float64      `json:"speedup"`
	Loops         []LoopReport `json:"loops"`
}

// MinLoopSpeedup returns the smallest per-nest speedup (1 when no nests).
func (r *Report) MinLoopSpeedup() float64 {
	min := 1.0
	for i, lr := range r.Loops {
		if i == 0 || lr.Speedup < min {
			min = lr.Speedup
		}
	}
	return min
}

// nestElems sizes one planned loop's per-invocation transformation work for
// the cost model: reduction region, private copies, finalized privates.
type nestElems struct {
	red, priv, fin int64
}

func elemsOf(li *parallel.LoopInfo) nestElems {
	var e nestElems
	for _, vr := range li.Dep.Vars {
		switch vr.Class.String() {
		case "reduction":
			e.red += vr.Sym.NElems()
		case "private":
			e.priv += vr.Sym.NElems()
			if vr.NeedsFinalization {
				e.fin += vr.Sym.NElems()
			}
		}
	}
	return e
}

// hasReduction reports whether the planned loop carries a reduction — the
// only case where the finalization discipline can matter.
func (e nestElems) hasReduction() bool { return e.red > 0 }

// nest is one chosen loop's search state.
type nest struct {
	li     *parallel.LoopInfo
	seqOps int64 // profiled sequential virtual time of the whole nest
	seqInv int64
	depths []int                      // legal interchange depths
	at     map[int]*parallel.LoopInfo // planned loop per legal depth
	elems  map[int]nestElems
	// cands holds one slot per enumerated variant, in enumeration order;
	// nil Score = not yet executed (counted pruned if the budget cuts it).
	cands  []*candidate
	pruned int
	deflt  Score
}

type candidate struct {
	v     Variant
	score *Score
}

func (n *nest) legal(d int) bool {
	_, ok := n.at[d]
	return ok
}

// runKey identifies one plan execution: every nest variant sharing the key
// is scored from the same run (nests are independent, so one run serves one
// variant of each nest).
type runKey struct {
	workers   int
	depth     int
	sched     exec.Schedule
	staggered bool
}

type runJob struct {
	key  runKey
	refs []runRef // candidate slots this run scores
}

type runRef struct {
	nest *nest
	cand *candidate
}

// Search tunes every approved parallel nest of res. It returns a partial
// report flagged BudgetExhausted when MaxRuns cuts the sweep short, and an
// error (with no report) on cancellation, invalid config, or engine failure.
// For a fixed (program, config) the search — run order, scores, report
// bytes — is deterministic.
func Search(ctx context.Context, res *parallel.Result, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		counters.invalid.Add(1)
		return nil, err
	}
	counters.searches.Add(1)
	if err := ctx.Err(); err != nil {
		counters.cancelled.Add(1)
		return nil, err
	}

	// Sequential baseline with the loop profiler: per-nest virtual time
	// feeds both the W=1 scores and the serial remainder of interchange
	// variants (outer levels of a depth-d plan run sequentially).
	seqIn := exec.New(res.Prog)
	seqIn.Mode = cfg.Mode
	seqIn.MaxOps = cfg.MaxOps
	prof := exec.NewProfiler(seqIn)
	if err := seqIn.Run(); err != nil {
		counters.failed.Add(1)
		return nil, fmt.Errorf("tune: sequential baseline: %w", err)
	}
	counters.runs.Add(1)

	nests := collectNests(res, prof, cfg)
	jobs := enumerate(nests, cfg)

	rep := &Report{
		Machine:        cfg.Model.Name,
		Mode:           cfg.Mode.String(),
		DefaultWorkers: cfg.DefaultWorkers,
		SeqOps:         seqIn.Ops(),
	}

	// Execute jobs in enumeration order (default plan first) until done,
	// cancelled, or out of budget.
	for _, job := range jobs {
		if err := ctx.Err(); err != nil {
			counters.cancelled.Add(1)
			return nil, err
		}
		if cfg.MaxRuns > 0 && rep.Runs >= cfg.MaxRuns {
			rep.BudgetExhausted = true
			counters.exhausted.Add(1)
			break
		}
		stats, err := executeJob(res, nests, job, cfg)
		if err != nil {
			counters.failed.Add(1)
			return nil, err
		}
		rep.Runs++
		counters.runs.Add(1)
		scoreJob(nests, job, stats, cfg)
	}

	assemble(rep, nests, cfg)
	counters.scored.Add(int64(rep.Searched))
	counters.pruned.Add(int64(rep.Pruned))
	return rep, nil
}

// collectNests gathers the chosen loops with their baseline profiles and
// legal interchange depths, in the parallelizer's deterministic loop order.
func collectNests(res *parallel.Result, prof *exec.Profiler, cfg Config) []*nest {
	var nests []*nest
	for _, li := range res.Ordered {
		if !li.Chosen {
			continue
		}
		n := &nest{
			li:     li,
			depths: parallel.InterchangeDepths(res, li, cfg.MaxDepth),
			at:     map[int]*parallel.LoopInfo{},
			elems:  map[int]nestElems{},
		}
		for _, d := range n.depths {
			pl := parallel.LoopAtDepth(res, li, d)
			n.at[d] = pl
			n.elems[d] = elemsOf(pl)
		}
		if lp := prof.Of(li.Region.Loop); lp != nil {
			n.seqOps = lp.TotalOps
			n.seqInv = lp.Invocations
		}
		nests = append(nests, n)
	}
	return nests
}

// enumerate walks the global variant space in canonical order — workers,
// then depth, then schedule, then discipline — allocating one candidate
// slot per surviving (nest, variant) pair and grouping them into shared run
// jobs. The default plan's job is always first so a budget of one run still
// produces a baseline. W=1 variants are scored from the sequential profile
// and need no run.
func enumerate(nests []*nest, cfg Config) []*runJob {
	var jobs []*runJob
	index := map[runKey]*runJob{}
	jobFor := func(k runKey) *runJob {
		if j := index[k]; j != nil {
			return j
		}
		j := &runJob{key: k}
		index[k] = j
		jobs = append(jobs, j)
		return j
	}

	defaultKey := runKey{workers: cfg.DefaultWorkers, depth: 0, sched: exec.ScheduleEven, staggered: true}
	if cfg.DefaultWorkers > 1 {
		// Reserve position 0 for the baseline run; the per-nest default
		// scores are extracted from it even when the default variant is
		// itself pruned from the candidate enumeration.
		j := jobFor(defaultKey)
		for _, n := range nests {
			j.refs = append(j.refs, runRef{nest: n})
		}
	}

	for _, w := range cfg.Workers {
		for d := 0; d <= cfg.MaxDepth; d++ {
			for _, s := range exec.Schedules() {
				for _, g := range []bool{true, false} {
					v := Variant{Workers: w, Schedule: s.String(), Staggered: g, Depth: d}
					for _, n := range nests {
						addCandidate(n, v, w, d, s, g, cfg, jobFor)
					}
				}
			}
		}
	}
	return jobs
}

// addCandidate decides one (nest, variant) pair: prune it, score it from
// the sequential baseline (W=1), or attach it to its run job.
func addCandidate(n *nest, v Variant, w, d int, s exec.Schedule, g bool, cfg Config, jobFor func(runKey) *runJob) {
	if !n.legal(d) {
		n.pruned++ // interchange depth not proven legal for this nest
		return
	}
	if w == 1 {
		// One worker runs every iteration in order whatever the schedule or
		// discipline: only the canonical (even, staggered, depth 0) point
		// is kept, scored directly from the sequential profile.
		if s != exec.ScheduleEven || !g || d != 0 {
			n.pruned++
			return
		}
		sc := &Score{
			Variant:     v,
			Invocations: n.seqInv,
			WorkerOps:   n.seqOps,
			CritOps:     n.seqOps,
			Cycles:      float64(n.seqOps) * cfg.Model.CyclesPerOp,
		}
		n.cands = append(n.cands, &candidate{v: v, score: sc})
		return
	}
	if w > cfg.Model.Procs {
		n.pruned++ // wider than the machine: the model cannot favor it
		return
	}
	if !n.elems[d].hasReduction() && !g {
		// Without a reduction the finalization discipline is inert; the
		// single-lock twin would score identically to the staggered one.
		n.pruned++
		return
	}
	c := &candidate{v: v}
	n.cands = append(n.cands, c)
	j := jobFor(runKey{workers: w, depth: d, sched: s, staggered: g})
	j.refs = append(j.refs, runRef{nest: n, cand: c})
}

// executeJob builds and runs one candidate plan: every nest is planned at
// the job's depth where legal (its outermost loop otherwise), under the
// job's schedule, discipline and worker count.
func executeJob(res *parallel.Result, nests []*nest, job *runJob, cfg Config) (map[statKey]exec.ParLoopStat, error) {
	plan := &exec.ParallelPlan{Workers: job.key.workers, Loops: map[*ir.DoLoop]*exec.LoopPlan{}}
	opt := parallel.PlanOptions{
		Workers:   job.key.workers,
		Schedule:  job.key.sched,
		Staggered: job.key.staggered,
		Chunks:    cfg.Chunks,
	}
	for _, n := range nests {
		d := job.key.depth
		if !n.legal(d) {
			d = 0
		}
		pl := n.at[d]
		plan.Loops[pl.Region.Loop] = parallel.LowerLoop(pl, opt)
	}
	in := exec.NewWithPlan(res.Prog, plan)
	in.Mode = cfg.Mode
	in.MaxOps = cfg.MaxOps
	if err := in.Run(); err != nil {
		return nil, fmt.Errorf("tune: variant %dw/%s/stag=%v/d%d: %w",
			job.key.workers, job.key.sched, job.key.staggered, job.key.depth, err)
	}
	stats := map[statKey]exec.ParLoopStat{}
	for _, st := range in.ParallelStats() {
		stats[statKey{st.Line, st.Index}] = st
	}
	return stats, nil
}

type statKey struct {
	line  int
	index string
}

// scoreJob fills every candidate slot served by one executed run, and
// captures the per-nest default scores from the baseline run.
func scoreJob(nests []*nest, job *runJob, stats map[statKey]exec.ParLoopStat, cfg Config) {
	for _, ref := range job.refs {
		n := ref.nest
		d := job.key.depth
		if !n.legal(d) {
			d = 0
		}
		pl := n.at[d].Region.Loop
		st := stats[statKey{pl.Pos.Line, pl.Index.Name}]
		v := Variant{
			Workers:   job.key.workers,
			Schedule:  job.key.sched.String(),
			Staggered: job.key.staggered,
			Depth:     d,
		}
		sc := scoreVariant(cfg.Model, v, n.seqOps, st, n.elems[d])
		if ref.cand != nil {
			ref.cand.score = &sc
		} else {
			n.deflt = sc // baseline-run ref: the nest's default score
		}
	}
}

// scoreVariant folds a measured schedule profile through the machine cost
// model. The nest's modeled cost is its sequential remainder (outer levels
// and dispatch that stay serial) plus the critical path under bus
// contention plus per-invocation overheads: spawn, reduction
// initialization/finalization under the chosen discipline, private-copy
// initialization and last-iteration write-back. All terms are deterministic
// functions of virtual-time counts, so scores are reproducible bit-for-bit.
func scoreVariant(m *machine.Model, v Variant, nestSeqOps int64, st exec.ParLoopStat, el nestElems) Score {
	sc := Score{
		Variant:     v,
		Invocations: st.Invocations,
		WorkerOps:   st.WorkerOps,
		CritOps:     st.CritOps,
	}
	eff := st.Workers
	if eff < 1 {
		eff = 1
	}
	serial := nestSeqOps - st.WorkerOps
	if serial < 0 {
		serial = 0
	}
	inv := float64(st.Invocations)
	cycles := float64(serial) * m.CyclesPerOp
	cycles += float64(st.CritOps) * m.CyclesPerOp * (1 + m.BusPenalty*float64(eff-1))
	cycles += inv * m.SpawnCost
	if el.red > 0 {
		init := inv * float64(el.red) * m.CyclesPerOp
		final := inv * float64(el.red) * m.CyclesPerOp
		if v.Staggered {
			// §6.3.4: disjoint chunks finalize concurrently.
			final += inv * m.LockCost * 4
		} else {
			// §6.3.2: each worker takes the one lock in turn.
			final = final*float64(eff) + inv*m.LockCost*float64(eff)
		}
		cycles += init + final
	}
	cycles += inv * float64(el.priv+el.fin) * m.CyclesPerOp
	sc.Cycles = cycles
	return sc
}

// assemble turns the per-nest search state into the final report: chosen =
// lowest modeled cycles over the scored candidates, with the default as the
// incumbent (a candidate must beat it strictly, so ties keep the simpler
// baseline and per-nest speedup is never below 1).
func assemble(rep *Report, nests []*nest, cfg Config) {
	for _, n := range nests {
		if cfg.DefaultWorkers <= 1 {
			n.deflt = seqScore(n, cfg)
		}
		lr := LoopReport{
			ID:      n.li.ID(),
			Line:    n.li.Region.Loop.Pos.Line,
			Index:   n.li.Region.Loop.Index.Name,
			SeqOps:  n.seqOps,
			Depths:  n.depths,
			Pruned:  n.pruned,
			Default: n.deflt,
			Chosen:  n.deflt,
		}
		for _, c := range n.cands {
			if c.score == nil {
				lr.Pruned++ // budget cut before this variant's run
				continue
			}
			lr.Searched = append(lr.Searched, *c.score)
			if c.score.Cycles < lr.Chosen.Cycles {
				lr.Chosen = *c.score
			}
		}
		lr.Speedup = ratio(lr.Default.Cycles, lr.Chosen.Cycles)
		rep.Searched += len(lr.Searched)
		rep.Pruned += lr.Pruned
		rep.Loops = append(rep.Loops, lr)
	}
	sort.SliceStable(rep.Loops, func(i, j int) bool { return rep.Loops[i].ID < rep.Loops[j].ID })

	var inNests int64
	for _, n := range nests {
		inNests += n.seqOps
	}
	serial := rep.SeqOps - inNests
	if serial < 0 {
		serial = 0
	}
	base := float64(serial) * cfg.Model.CyclesPerOp
	rep.DefaultCycles = base
	rep.ChosenCycles = base
	for _, lr := range rep.Loops {
		rep.DefaultCycles += lr.Default.Cycles
		rep.ChosenCycles += lr.Chosen.Cycles
	}
	rep.Speedup = ratio(rep.DefaultCycles, rep.ChosenCycles)
}

// seqScore is the W=1 score derived from the sequential baseline profile.
func seqScore(n *nest, cfg Config) Score {
	return Score{
		Variant:     Variant{Workers: 1, Schedule: exec.ScheduleEven.String(), Staggered: true},
		Invocations: n.seqInv,
		WorkerOps:   n.seqOps,
		CritOps:     n.seqOps,
		Cycles:      float64(n.seqOps) * cfg.Model.CyclesPerOp,
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	return a / b
}

// BuildPlan lowers the report's winning variants to an execution plan over
// the same parallelization result the search ran on. Nests whose winner is
// one worker are left out (sequential beat every parallel variant); the
// plan-wide worker count is the widest chosen nest, with narrower nests
// capped per loop via MaxWorkers.
func (r *Report) BuildPlan(res *parallel.Result, cfg Config) *exec.ParallelPlan {
	cfg = cfg.withDefaults()
	byID := map[string]*parallel.LoopInfo{}
	for _, li := range res.Ordered {
		if li.Chosen {
			byID[li.ID()] = li
		}
	}
	plan := &exec.ParallelPlan{Workers: 1, Loops: map[*ir.DoLoop]*exec.LoopPlan{}}
	for _, lr := range r.Loops {
		if lr.Chosen.Workers <= 1 {
			continue
		}
		li := byID[lr.ID]
		if li == nil {
			continue
		}
		if !addVariant(plan, res, li, lr.Chosen.Variant, cfg.Chunks) {
			continue
		}
		if lr.Chosen.Workers > plan.Workers {
			plan.Workers = lr.Chosen.Workers
		}
	}
	return plan
}

// VariantPlan lowers a single nest's variant to a standalone execution plan
// — the exact plan the search executed that nest under (modulo the other
// nests sharing the run). The property suite uses it to prove every
// enumerated variant is semantics-preserving, not just the winner.
func VariantPlan(res *parallel.Result, li *parallel.LoopInfo, v Variant, chunks int) *exec.ParallelPlan {
	if chunks < 1 {
		chunks = 4
	}
	plan := &exec.ParallelPlan{Workers: v.Workers, Loops: map[*ir.DoLoop]*exec.LoopPlan{}}
	if v.Workers <= 1 {
		plan.Workers = 1
		return plan
	}
	if !addVariant(plan, res, li, v, chunks) {
		return nil
	}
	return plan
}

// addVariant lowers one nest at one variant into plan. It reports false
// when the variant's depth is not resolvable on this result.
func addVariant(plan *exec.ParallelPlan, res *parallel.Result, li *parallel.LoopInfo, v Variant, chunks int) bool {
	pl := parallel.LoopAtDepth(res, li, v.Depth)
	if pl == nil {
		return false
	}
	sched, err := exec.ParseSchedule(v.Schedule)
	if err != nil {
		sched = exec.ScheduleEven
	}
	lp := parallel.LowerLoop(pl, parallel.PlanOptions{
		Schedule:  sched,
		Staggered: v.Staggered,
		Chunks:    chunks,
	})
	lp.MaxWorkers = v.Workers
	plan.Loops[pl.Region.Loop] = lp
	return true
}
