package session

import (
	"context"
	"errors"
	"fmt"
)

// ErrDuplicateID reports a Create with a pinned id that is already live.
var ErrDuplicateID = errors.New("session id already exists")

// AssertRecord is one accepted assertion in a session's replay script.
type AssertRecord struct {
	Kind string `json:"kind"`
	Loop string `json:"loop"`
	Var  string `json:"var"`
}

// Export is the wire form of a drained session: everything a peer worker
// needs to rebuild an equivalent session — the source program, the creation
// options, and the accepted-assertion script, replayed in order. Analysis
// state (summaries, profiles, dependence verdicts) deliberately does NOT
// cross the wire: it is deterministic from (source, options, asserts), and
// shipping summaries instead of re-deriving them would couple workers to each
// other's internal representations.
type Export struct {
	ID           string         `json:"id"`
	Name         string         `json:"name"`
	Source       string         `json:"source"`
	NoReductions bool           `json:"no_reductions,omitempty"`
	NoLiveness   bool           `json:"no_liveness,omitempty"`
	MaxOps       int64          `json:"max_ops,omitempty"`
	Workers      int            `json:"workers,omitempty"`
	Asserts      []AssertRecord `json:"asserts,omitempty"`
}

// Export snapshots the session's replayable state.
func (s *Session) Export() Export {
	s.mu.Lock()
	defer s.mu.Unlock()
	asserts := make([]AssertRecord, len(s.acceptedLog))
	copy(asserts, s.acceptedLog)
	return Export{
		ID:           s.id,
		Name:         s.name,
		Source:       s.src,
		NoReductions: s.opts.NoReductions,
		NoLiveness:   s.opts.NoLiveness,
		MaxOps:       s.opts.MaxOps,
		Workers:      s.opts.Workers,
		Asserts:      asserts,
	}
}

// Drain removes the named sessions from the table and returns their exports,
// plus the ids that were not live. Removed sessions stop being routable
// immediately; in-flight requests holding a *Session finish against the
// orphaned copy, serialized by the session mutex as usual.
func (m *Manager) Drain(ids []string) (exports []Export, missing []string) {
	m.mu.Lock()
	var victims []*Session
	for _, id := range ids {
		s, ok := m.byID[id]
		if !ok {
			missing = append(missing, id)
			continue
		}
		m.removeLocked(s)
		victims = append(victims, s)
	}
	m.mu.Unlock()

	// Exports are snapshotted outside the manager lock: the established lock
	// order is session.mu → manager.mu (see Session.Info), so taking
	// session.mu under m.mu would invert it.
	exports = make([]Export, 0, len(victims))
	for _, s := range victims {
		exports = append(exports, s.Export())
		m.drained.Add(1)
	}
	return exports, missing
}

// IDs returns every live session id (unordered).
func (m *Manager) IDs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.byID))
	for id := range m.byID {
		ids = append(ids, id)
	}
	return ids
}

// Import rebuilds a drained session from its export: a Create pinned to the
// exported id followed by an in-order replay of the accepted assertions. The
// assertion checker is deterministic, so a replayed accept cannot become a
// reject; if one does (version-skewed peers), Import fails rather than
// resuming a session in a divergent state.
func (m *Manager) Import(ctx context.Context, ex Export) (*Session, error) {
	s, err := m.Create(ctx, ex.Name, ex.Source, Options{
		ID:           ex.ID,
		NoReductions: ex.NoReductions,
		NoLiveness:   ex.NoLiveness,
		MaxOps:       ex.MaxOps,
		Workers:      ex.Workers,
	})
	if err != nil {
		return nil, err
	}
	for _, a := range ex.Asserts {
		out, err := s.Assert(a.Kind, a.Loop, a.Var)
		if err == nil && !out.Accepted {
			err = fmt.Errorf("replay rejected: %s (%s)", out.Code, out.Reason)
		}
		if err != nil {
			m.Delete(ex.ID)
			return nil, fmt.Errorf("session %s: replaying assert %s %s in %s: %w",
				ex.ID, a.Kind, a.Var, a.Loop, err)
		}
	}
	s.mu.Lock()
	s.event("imported", fmt.Sprintf("drained from peer with %d replayed asserts", len(ex.Asserts)))
	s.mu.Unlock()
	m.imported.Add(1)
	return s, nil
}
