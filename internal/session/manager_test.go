package session

import (
	"context"
	"strings"
	"testing"
	"time"

	"suifx/internal/driver"
	"suifx/internal/explorer"
	"suifx/internal/workloads"
)

// fakeClock is a manual test clock for TTL eviction.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func testManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = driver.NewCache()
	}
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	return m
}

func mustCreate(t *testing.T, m *Manager, name, src string) *Session {
	t.Helper()
	s, err := m.Create(context.Background(), name, src, Options{})
	if err != nil {
		t.Fatalf("Create(%s): %v", name, err)
	}
	return s
}

func mdgSession(t *testing.T, m *Manager) *Session {
	t.Helper()
	w := workloads.ByName("mdg")
	return mustCreate(t, m, w.Name, w.Source)
}

// TestSessionDialogueMdg drives the paper's mdg walkthrough end to end: the
// Guru's worklist shows INTERF/1000 as an important loop blocked statically
// on RL with zero observed dynamic dependences (the hint that an assertion
// is plausible), one PRIVATE assertion unlocks it, and the incremental
// re-analysis proves it recomputed only INTERF's SCC plus its transitive
// callers.
func TestSessionDialogueMdg(t *testing.T) {
	m := testManager(t, Config{})
	s := mdgSession(t, m)

	g := s.Guru()
	if len(g.Targets) == 0 {
		t.Fatal("guru returned no targets")
	}
	var interf *Target
	for i := range g.Targets {
		if g.Targets[i].Loop == "INTERF/1000" {
			interf = &g.Targets[i]
			break
		}
	}
	if interf == nil {
		t.Fatalf("INTERF/1000 not in the guru worklist: %+v", g.Targets)
	}
	if !interf.Important {
		t.Fatal("INTERF/1000 not marked important despite its coverage")
	}
	if interf.StaticDeps == 0 || interf.DynDeps != 0 {
		t.Fatalf("INTERF/1000: static=%d dyn=%d, want static>0 dyn==0 (assertion hint)", interf.StaticDeps, interf.DynDeps)
	}
	if len(interf.Blocking) == 0 || interf.Blocking[0] != "RL" {
		t.Fatalf("INTERF/1000 blocking = %v, want RL", interf.Blocking)
	}
	coverageBefore := g.Coverage

	out, err := s.Assert(KindPrivate, "INTERF/1000", "RL")
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatalf("assertion rejected: %s (%s)", out.Reason, out.Code)
	}
	// The incremental contract: only INTERF's SCC and its transitive
	// callers (the main program) were re-summarized; every callee of
	// INTERF was served from the retained results.
	prog := m.cfg.Cache.MustAnalyze("mdg", workloads.ByName("mdg").Source, driver.Options{}).Prog
	if out.Reanalysis.Recomputed >= len(prog.Procs) {
		t.Fatalf("assertion recomputed all %d procs — not incremental", len(prog.Procs))
	}
	recomputed := out.Reanalysis.RecomputedSet()
	if !recomputed["INTERF"] {
		t.Fatalf("recomputed %v does not include INTERF", out.Reanalysis.RecomputedProcs)
	}
	for _, callee := range []string{"DISTS", "VFORCE", "UPDATE"} {
		if recomputed[callee] {
			t.Fatalf("callee %s was recomputed; bottom-up invalidation must not dirty callees", callee)
		}
	}
	if out.Guru == nil {
		t.Fatal("accepted assertion must return the re-ranked guru list")
	}
	for _, tg := range out.Guru.Targets {
		if tg.Loop == "INTERF/1000" {
			t.Fatal("INTERF/1000 still a sequential target after the unlocking assertion")
		}
	}
	if out.Guru.Coverage <= coverageBefore {
		t.Fatalf("parallel coverage %f did not improve (was %f)", out.Guru.Coverage, coverageBefore)
	}

	// Observability: events recorded, manager counters advanced.
	evs := s.Events(0)
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"created", "analyzed", "profiled", "assert"} {
		if !kinds[k] {
			t.Fatalf("event log %v missing kind %q", evs, k)
		}
	}
	st := m.Stats()
	if st.AssertsAccepted != 1 || st.Live != 1 || st.Created != 1 {
		t.Fatalf("stats = %+v, want 1 accepted assert and 1 live session", st)
	}
	if st.SummariesReused == 0 {
		t.Fatal("stats show no reused summaries after an incremental re-analysis")
	}

	info := s.Info()
	if info.Asserts != 1 || info.LastReanalysis.Recomputed != out.Reanalysis.Recomputed {
		t.Fatalf("info = %+v does not reflect the assertion", info)
	}
}

// TestSessionAssertRejections covers the assertion-checker edge cases: each
// bad claim comes back as an explicit rejection with a machine-readable
// code, never a silent drop or an opaque transport error.
func TestSessionAssertRejections(t *testing.T) {
	m := testManager(t, Config{})
	s := mdgSession(t, m)

	cases := []struct {
		name, kind, loop, v, code string
	}{
		{"unknown loop", KindPrivate, "NOPE/1", "RL", explorer.RejectUnknownLoop},
		{"unknown loop independent", KindIndependent, "NOPE/1", "RL", explorer.RejectUnknownLoop},
		{"unknown variable", KindPrivate, "INTERF/1000", "NOSUCHVAR", explorer.RejectUnknownVar},
		{"unknown variable independent", KindIndependent, "INTERF/1000", "NOSUCHVAR", explorer.RejectUnknownVar},
	}
	for _, tc := range cases {
		out, err := s.Assert(tc.kind, tc.loop, tc.v)
		if err != nil {
			t.Fatalf("%s: transport error %v, want in-band rejection", tc.name, err)
		}
		if out.Accepted || out.Code != tc.code {
			t.Fatalf("%s: outcome %+v, want rejection with code %s", tc.name, out, tc.code)
		}
	}
	if _, err := s.Assert("frobnicate", "INTERF/1000", "RL"); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("bad kind error = %v, want ErrBadAssertKind", err)
	}
	if st := m.Stats(); st.AssertsRejected != int64(len(cases)) || st.AssertsAccepted != 0 {
		t.Fatalf("stats = %+v, want %d rejections", st, len(cases))
	}
	// Rejections must not have perturbed the analysis: INTERF/1000 is still
	// a sequential target.
	found := false
	for _, tg := range s.Guru().Targets {
		found = found || tg.Loop == "INTERF/1000"
	}
	if !found {
		t.Fatal("rejected assertions changed the analysis: INTERF/1000 left the worklist")
	}
}

// TestSessionAssertContradicted: an INDEPENDENT claim on a variable with an
// observed loop-carried flow dependence is refuted by the dynamic checker.
func TestSessionAssertContradicted(t *testing.T) {
	const recur = `      PROGRAM chainy
      REAL a(100)
      DO 10 i = 1, 100
        a(i) = 1.0
10    CONTINUE
      DO 20 i = 2, 100
        a(i) = a(i-1) + 1.0
20    CONTINUE
      END
`
	m := testManager(t, Config{})
	s := mustCreate(t, m, "chainy.f", recur)
	out, err := s.Assert(KindIndependent, "CHAINY/20", "A")
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted || out.Code != explorer.RejectContradicted {
		t.Fatalf("outcome = %+v, want contradicted rejection", out)
	}
	if !strings.Contains(out.Reason, "contradicted") {
		t.Fatalf("reason %q does not explain the contradiction", out.Reason)
	}
}

// TestSessionTTLEviction: sessions idle past the TTL are swept; touched
// sessions survive.
func TestSessionTTLEviction(t *testing.T) {
	clk := newFakeClock()
	m := testManager(t, Config{IdleTTL: time.Minute, now: clk.now})
	w := workloads.ByName("mdg")
	old := mustCreate(t, m, w.Name, w.Source)
	fresh := mustCreate(t, m, w.Name, w.Source)

	clk.advance(59 * time.Second)
	fresh.Guru() // touch: resets the idle timer
	clk.advance(2 * time.Second)

	if n := m.Sweep(); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if _, ok := m.Get(old.ID()); ok {
		t.Fatal("idle session still resolvable after TTL eviction")
	}
	if _, ok := m.Get(fresh.ID()); !ok {
		t.Fatal("recently touched session was evicted")
	}
	if st := m.Stats(); st.EvictedIdle != 1 || st.Live != 1 {
		t.Fatalf("stats = %+v, want 1 idle eviction and 1 live", st)
	}
}

// TestSessionLRUCapEviction: creating past MaxSessions evicts the least
// recently used session, not the most recent.
func TestSessionLRUCapEviction(t *testing.T) {
	m := testManager(t, Config{MaxSessions: 2})
	w := workloads.ByName("mdg")
	a := mustCreate(t, m, w.Name, w.Source)
	b := mustCreate(t, m, w.Name, w.Source)
	a.Guru() // a is now more recently used than b
	c := mustCreate(t, m, w.Name, w.Source)

	if _, ok := m.Get(b.ID()); ok {
		t.Fatal("least recently used session b survived cap eviction")
	}
	for _, s := range []*Session{a, c} {
		if _, ok := m.Get(s.ID()); !ok {
			t.Fatalf("session %s wrongly evicted", s.ID())
		}
	}
	if st := m.Stats(); st.EvictedFull != 1 || st.Live != 2 || st.MaxSessions != 2 {
		t.Fatalf("stats = %+v, want 1 full eviction, 2 live", st)
	}
}

// TestSessionDelete: explicit teardown is observable and idempotent.
func TestSessionDelete(t *testing.T) {
	m := testManager(t, Config{})
	s := mdgSession(t, m)
	if !m.Delete(s.ID()) {
		t.Fatal("delete of a live session failed")
	}
	if m.Delete(s.ID()) {
		t.Fatal("second delete reported success")
	}
	if st := m.Stats(); st.Deleted != 1 || st.Live != 0 {
		t.Fatalf("stats = %+v, want 1 deleted, 0 live", st)
	}
}

// TestSessionSharedCacheOneAnalysis: two sessions over identical source cost
// one driver analysis (content-hash cache) and branch independently — an
// assertion in one never leaks into the other.
func TestSessionSharedCacheOneAnalysis(t *testing.T) {
	cache := driver.NewCache()
	m := testManager(t, Config{Cache: cache})
	s1 := mdgSession(t, m)
	s2 := mdgSession(t, m)
	if st := cache.Stats(); st.Misses != 1 || st.Hits < 1 {
		t.Fatalf("cache stats = %+v, want exactly one analysis for both sessions", st)
	}
	if out, err := s1.Assert(KindPrivate, "INTERF/1000", "RL"); err != nil || !out.Accepted {
		t.Fatalf("assert failed: %v / %+v", err, out)
	}
	for _, tg := range s2.Guru().Targets {
		if tg.Loop == "INTERF/1000" {
			return // still sequential in s2, as it must be
		}
	}
	t.Fatal("assertion in session 1 leaked into session 2's analysis")
}
