// Package session hosts the SUIF Explorer's interactive Guru dialogue
// (§2.6–§2.8) as a stateful, concurrency-safe subsystem: a Manager keeps a
// bounded table of live sessions, each pinning a parsed program plus its
// incremental analysis state, so the create → guru → assert → re-rank loop
// pays one cold analysis and one profiling run up front and then only
// incremental re-analysis per interaction. Sessions are evicted when idle
// past a TTL, when the table is full (least recently used first), or on
// explicit delete; every transition is counted for /v1/stats.
package session

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"suifx/internal/driver"
	"suifx/internal/explorer"
)

// Defaults for the zero Config.
const (
	DefaultMaxSessions = 64
	DefaultIdleTTL     = 15 * time.Minute
	DefaultSweepEvery  = 30 * time.Second
	DefaultMaxEvents   = 256
	// DefaultMaxOps bounds a session's profiling run so one pathological
	// program cannot pin a creation slot forever.
	DefaultMaxOps = 200_000_000
)

// Config tunes a Manager. The zero value is usable.
type Config struct {
	// MaxSessions bounds the session table; creating past the bound evicts
	// the least recently used session. Default 64.
	MaxSessions int
	// IdleTTL evicts sessions untouched for this long. Default 15m.
	IdleTTL time.Duration
	// SweepEvery is the janitor period. Default 30s.
	SweepEvery time.Duration
	// Cache supplies memoized whole-program analyses for session creation
	// (default driver.Shared()): identical sources across sessions cost one
	// static analysis, which each session then branches incrementally.
	Cache *driver.Cache
	// Workers bounds each session's analysis worker pool (0 = GOMAXPROCS).
	Workers int
	// MaxEvents bounds each session's event log. Default 256.
	MaxEvents int

	// now is the test clock (default time.Now).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = DefaultMaxSessions
	}
	if c.IdleTTL <= 0 {
		c.IdleTTL = DefaultIdleTTL
	}
	if c.SweepEvery <= 0 {
		c.SweepEvery = DefaultSweepEvery
	}
	if c.Cache == nil {
		c.Cache = driver.Shared()
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Manager is the bounded, concurrency-safe session table.
type Manager struct {
	cfg Config

	mu   sync.Mutex
	byID map[string]*Session
	lru  *list.List // front = most recently used; values are *Session

	created             atomic.Int64
	deleted             atomic.Int64
	evictedIdle         atomic.Int64
	evictedFull         atomic.Int64
	assertsAccepted     atomic.Int64
	assertsRejected     atomic.Int64
	summariesRecomputed atomic.Int64
	summariesReused     atomic.Int64
	drained             atomic.Int64
	imported            atomic.Int64

	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewManager builds a Manager and starts its idle-TTL janitor; callers must
// Close it to stop the janitor goroutine.
func NewManager(cfg Config) *Manager {
	m := &Manager{
		cfg:  cfg.withDefaults(),
		byID: map[string]*Session{},
		lru:  list.New(),
		stop: make(chan struct{}),
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Close stops the janitor and drops every session. It is idempotent.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		close(m.stop)
		m.wg.Wait()
		m.mu.Lock()
		m.byID = map[string]*Session{}
		m.lru = list.New()
		m.mu.Unlock()
	})
}

func (m *Manager) janitor() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Sweep()
		}
	}
}

// Sweep evicts every session idle past the TTL and returns how many went.
func (m *Manager) Sweep() int {
	now := m.cfg.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for el := m.lru.Back(); el != nil; {
		prev := el.Prev()
		s := el.Value.(*Session)
		if now.Sub(s.lastUsed) > m.cfg.IdleTTL {
			m.removeLocked(s)
			m.evictedIdle.Add(1)
			n++
		}
		el = prev
	}
	return n
}

// Options are the per-session knobs of a create request.
type Options struct {
	// NoReductions and NoLiveness disable the corresponding analyses.
	NoReductions bool
	NoLiveness   bool
	// MaxOps bounds the profiling run (default DefaultMaxOps).
	MaxOps int64
	// Workers overrides the manager's analysis worker pool for this session.
	Workers int
	// ID pins the session id instead of generating one — the cluster
	// coordinator assigns ids up front so the hash ring can route them, and
	// drain replay recreates sessions under their original id. Creating a
	// duplicate id is an error.
	ID string
}

// Create parses, analyzes (through the shared content-hash cache, branched
// incrementally for this session) and profiles the program, then registers
// the new session, evicting the least recently used one if the table is
// full. The heavy work runs outside the manager lock.
func (m *Manager) Create(ctx context.Context, name, src string, opts Options) (*Session, error) {
	if opts.ID != "" {
		m.mu.Lock()
		_, dup := m.byID[opts.ID]
		m.mu.Unlock()
		if dup {
			return nil, fmt.Errorf("session id %q: %w", opts.ID, ErrDuplicateID)
		}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = m.cfg.Workers
	}
	res, err := m.cfg.Cache.AnalyzeCtx(ctx, name, src, driver.Options{Workers: workers})
	if err != nil {
		return nil, err
	}

	exOpts := explorer.DefaultOptions()
	exOpts.UseReductions = !opts.NoReductions
	exOpts.UseLiveness = !opts.NoLiveness
	exOpts.Workers = workers
	exOpts.MaxOps = opts.MaxOps
	if exOpts.MaxOps <= 0 {
		exOpts.MaxOps = DefaultMaxOps
	}

	ex := explorer.NewUnstarted(driver.NewIncrementalFrom(res, driver.Options{Workers: workers}), exOpts)
	id := opts.ID
	if id == "" {
		id = newID()
	}
	s := &Session{
		id:      id,
		name:    res.Prog.Name,
		m:       m,
		created: m.cfg.now(),
		ex:      ex,
		src:     src,
		opts:    opts,
	}
	s.lastUsed = s.created
	s.event("created", fmt.Sprintf("program %s (%d procedures)", res.Prog.Name, len(res.Prog.Procs)))
	if err := ex.Analyze(); err != nil {
		return nil, err
	}
	s.event("analyzed", fmt.Sprintf("run %d: %d summaries recomputed, %d reused",
		ex.LastInc.Run, ex.LastInc.Recomputed, ex.LastInc.Reused))
	m.recordInc(ex.LastInc)
	if err := ex.Profile(); err != nil {
		return nil, err
	}
	s.event("profiled", fmt.Sprintf("%d virtual ops", ex.Prof.TotalOps()))

	m.mu.Lock()
	if _, dup := m.byID[s.id]; dup {
		// Pinned-id race: a concurrent Create registered the id while the
		// heavy work above ran outside the lock.
		m.mu.Unlock()
		return nil, fmt.Errorf("session id %q: %w", s.id, ErrDuplicateID)
	}
	for len(m.byID) >= m.cfg.MaxSessions {
		victim := m.lru.Back()
		if victim == nil {
			break
		}
		m.removeLocked(victim.Value.(*Session))
		m.evictedFull.Add(1)
	}
	s.elem = m.lru.PushFront(s)
	m.byID[s.id] = s
	m.mu.Unlock()
	m.created.Add(1)
	return s, nil
}

// Get returns a live session and marks it used.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byID[id]
	if !ok {
		return nil, false
	}
	s.lastUsed = m.cfg.now()
	m.lru.MoveToFront(s.elem)
	return s, true
}

// Delete removes a session explicitly.
func (m *Manager) Delete(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.byID[id]
	if !ok {
		return false
	}
	m.removeLocked(s)
	m.deleted.Add(1)
	return true
}

// Len returns the number of live sessions.
func (m *Manager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.byID)
}

func (m *Manager) removeLocked(s *Session) {
	delete(m.byID, s.id)
	m.lru.Remove(s.elem)
}

func (m *Manager) touch(s *Session) {
	m.mu.Lock()
	s.lastUsed = m.cfg.now()
	if s.elem != nil {
		m.lru.MoveToFront(s.elem)
	}
	m.mu.Unlock()
}

func (m *Manager) recordInc(st driver.IncStats) {
	m.summariesRecomputed.Add(int64(st.Recomputed))
	m.summariesReused.Add(int64(st.Reused))
}

// Stats is the manager's observability snapshot for /v1/stats.
type Stats struct {
	Live        int   `json:"live"`
	MaxSessions int   `json:"max_sessions"`
	Created     int64 `json:"created"`
	Deleted     int64 `json:"deleted"`
	EvictedIdle int64 `json:"evicted_idle"`
	EvictedFull int64 `json:"evicted_full"`
	// IdleTTLSec is the eviction TTL in seconds.
	IdleTTLSec float64 `json:"idle_ttl_sec"`

	AssertsAccepted int64 `json:"asserts_accepted"`
	AssertsRejected int64 `json:"asserts_rejected"`
	// SummariesRecomputed / SummariesReused aggregate the incremental
	// driver's counters over every (re-)analysis of every session: the
	// interactive win is Reused ≫ Recomputed.
	SummariesRecomputed int64 `json:"summaries_recomputed"`
	SummariesReused     int64 `json:"summaries_reused"`
	// Drained / Imported count cluster handoffs: sessions serialized out via
	// /v1/drain and sessions rebuilt here from a peer's export.
	Drained  int64 `json:"drained"`
	Imported int64 `json:"imported"`
}

// Stats returns the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Live:                m.Len(),
		MaxSessions:         m.cfg.MaxSessions,
		Created:             m.created.Load(),
		Deleted:             m.deleted.Load(),
		EvictedIdle:         m.evictedIdle.Load(),
		EvictedFull:         m.evictedFull.Load(),
		IdleTTLSec:          m.cfg.IdleTTL.Seconds(),
		AssertsAccepted:     m.assertsAccepted.Load(),
		AssertsRejected:     m.assertsRejected.Load(),
		SummariesRecomputed: m.summariesRecomputed.Load(),
		SummariesReused:     m.summariesReused.Load(),
		Drained:             m.drained.Load(),
		Imported:            m.imported.Load(),
	}
}

func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("session: id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}
