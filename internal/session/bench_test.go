package session

import (
	"testing"

	"suifx/internal/driver"
	"suifx/internal/explorer"
	"suifx/internal/workloads"
)

// The session benchmarks quantify the interactive win the subsystem exists
// for: a cold static analysis of the whole program versus the incremental
// re-analysis an assertion triggers (dirty SCC + callers only, every other
// summary and dependence verdict reused). benchjson derives the ratio into
// BENCH_session.json as session_incremental_speedup.

// BenchmarkSessionColdAnalyze is the create-time cost: parse the program and
// run the full static pipeline (summaries + parallelization) from scratch.
func BenchmarkSessionColdAnalyze(b *testing.B) {
	w := workloads.ByName("mdg")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ex := explorer.NewUnstarted(
			driver.NewIncremental(w.Fresh(), driver.Options{}), explorer.DefaultOptions())
		if err := ex.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionIncrementalReanalyze is the per-assertion cost: invalidate
// one procedure (as an assertion on an INTERF loop does) and bring the
// analysis back up to date incrementally.
func BenchmarkSessionIncrementalReanalyze(b *testing.B) {
	w := workloads.ByName("mdg")
	ex := explorer.NewUnstarted(
		driver.NewIncremental(w.Fresh(), driver.Options{}), explorer.DefaultOptions())
	if err := ex.Analyze(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Inc.Invalidate("INTERF")
		if err := ex.Reanalyze(); err != nil {
			b.Fatal(err)
		}
	}
}
