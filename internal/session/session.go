package session

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"

	"suifx/internal/driver"
	"suifx/internal/explorer"
	"suifx/internal/slice"
)

// Session is one live Guru dialogue: a mutex-guarded explorer session plus
// an event log. All operations serialize on the session mutex, so concurrent
// requests against one session are safe and see a consistent analysis state;
// distinct sessions proceed in parallel.
type Session struct {
	id      string
	name    string
	m       *Manager
	created time.Time

	// lastUsed and elem are guarded by the Manager's lock (they order
	// eviction); the remaining mutable state is guarded by mu.
	lastUsed time.Time
	elem     *list.Element

	mu      sync.Mutex
	ex      *explorer.Session
	events  []Event
	nextSeq int64
	asserts int

	// src and opts are retained (immutable after Create) so a drain can
	// serialize the session for replay on another worker; acceptedLog is the
	// mu-guarded replay script of accepted assertions in order.
	src         string
	opts        Options
	acceptedLog []AssertRecord
}

// ID returns the session's wire identifier.
func (s *Session) ID() string { return s.id }

// Event is one entry of the session's dialogue log.
type Event struct {
	Seq    int64     `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Detail string    `json:"detail"`
}

// event appends to the bounded log. Callers either hold s.mu or (during
// Create) have exclusive access.
func (s *Session) event(kind, detail string) {
	s.nextSeq++
	s.events = append(s.events, Event{Seq: s.nextSeq, Time: s.m.cfg.now(), Kind: kind, Detail: detail})
	if max := s.m.cfg.MaxEvents; len(s.events) > max {
		s.events = append(s.events[:0], s.events[len(s.events)-max:]...)
	}
}

// Events returns the log entries with Seq > afterSeq.
func (s *Session) Events(afterSeq int64) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := []Event{}
	for _, e := range s.events {
		if e.Seq > afterSeq {
			out = append(out, e)
		}
	}
	return out
}

// Info is the session's lifecycle snapshot.
type Info struct {
	ID       string    `json:"id"`
	Program  string    `json:"program"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
	Asserts  int       `json:"asserts"`
	Loops    int       `json:"loops"`
	Parallel int       `json:"parallel_loops"`
	// LastReanalysis reports what the most recent (re-)analysis recomputed
	// versus reused — the incremental-invalidation evidence.
	LastReanalysis driver.IncStats `json:"last_reanalysis"`
}

// Info snapshots the session.
func (s *Session) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.ex.Par.Stats()
	return Info{
		ID:             s.id,
		Program:        s.name,
		Created:        s.created,
		LastUsed:       s.lastUsedSnapshot(),
		Asserts:        s.asserts,
		Loops:          st.TotalLoops,
		Parallel:       st.ChosenN,
		LastReanalysis: s.ex.LastInc,
	}
}

func (s *Session) lastUsedSnapshot() time.Time {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	return s.lastUsed
}

// GuruReport is the Guru's ranked worklist (§2.6) plus the program-level
// coverage and granularity of the automatically parallelized loops.
type GuruReport struct {
	Program string `json:"program"`
	// Coverage is the fraction of profiled work inside chosen parallel loops.
	Coverage      float64  `json:"parallel_coverage"`
	GranularityMs float64  `json:"granularity_ms"`
	Targets       []Target `json:"targets"`
	// Reanalysis echoes the last incremental-analysis stats so clients can
	// observe the recompute/reuse split after each assertion.
	Reanalysis driver.IncStats `json:"reanalysis"`
}

// Target is one ranked loop.
type Target struct {
	Loop          string   `json:"loop"`
	Lines         [2]int   `json:"lines"`
	CoveragePct   float64  `json:"coverage_pct"`
	GranularityMs float64  `json:"granularity_ms"`
	DynDeps       int64    `json:"dyn_deps"`
	StaticDeps    int      `json:"static_deps"`
	Important     bool     `json:"important"`
	Blocking      []string `json:"blocking,omitempty"`
}

// Guru returns the ranked target list.
func (s *Session) Guru() *GuruReport {
	s.m.touch(s)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.guruLocked()
}

func (s *Session) guruLocked() *GuruReport {
	cov, gran := s.ex.CoverageGranularity()
	rep := &GuruReport{
		Program:       s.name,
		Coverage:      cov,
		GranularityMs: gran,
		Targets:       []Target{},
		Reanalysis:    s.ex.LastInc,
	}
	for _, t := range s.ex.Targets() {
		lo, hi := t.Loop.Region.Lines()
		tg := Target{
			Loop:          t.ID(),
			Lines:         [2]int{lo, hi},
			CoveragePct:   t.CoveragePct,
			GranularityMs: t.GranularityMs,
			DynDeps:       t.DynDeps,
			StaticDeps:    t.StaticDeps,
			Important:     t.Important,
		}
		for _, b := range t.Loop.Dep.Blocking {
			tg.Blocking = append(tg.Blocking, b.Sym.Name)
		}
		rep.Targets = append(rep.Targets, tg)
	}
	return rep
}

// Assertion kinds.
const (
	KindPrivate     = "private"
	KindIndependent = "independent"
)

// ErrBadAssertKind reports an unknown assertion kind.
var ErrBadAssertKind = errors.New(`assertion kind must be "private" or "independent"`)

// AssertOutcome is the result of one assertion: either accepted — with the
// incremental re-analysis stats and the re-ranked Guru list — or rejected by
// the assertion checker with a machine-readable code and reason. A rejection
// is a domain outcome, not a transport error.
type AssertOutcome struct {
	Accepted bool   `json:"accepted"`
	Loop     string `json:"loop"`
	Var      string `json:"var"`
	Kind     string `json:"kind"`
	// Code/Reason are set on rejection (explorer.Reject* codes).
	Code   string `json:"code,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Warnings carry the checker's automatic extensions (e.g. privatizing a
	// common array in callees).
	Warnings []string `json:"warnings,omitempty"`
	// Reanalysis is the incremental re-analysis triggered by an accepted
	// assertion: Recomputed counts procedures whose summaries were rebuilt
	// (the dirtied SCC plus transitive callers), Reused the rest.
	Reanalysis driver.IncStats `json:"reanalysis"`
	// Guru is the re-ranked worklist after an accepted assertion.
	Guru *GuruReport `json:"guru,omitempty"`
}

// Assert records a user assertion and, when the checker accepts it,
// incrementally re-analyzes. Only ErrBadAssertKind is returned as an error;
// checker rejections come back inside the outcome.
func (s *Session) Assert(kind, loopID, varName string) (*AssertOutcome, error) {
	s.m.touch(s)
	s.mu.Lock()
	defer s.mu.Unlock()

	out := &AssertOutcome{Loop: loopID, Var: varName, Kind: kind}
	var warnings []string
	var err error
	switch kind {
	case KindPrivate:
		warnings, err = s.ex.AssertPrivate(loopID, varName)
	case KindIndependent:
		err = s.ex.AssertIndependent(loopID, varName)
	default:
		return nil, fmt.Errorf("%q: %w", kind, ErrBadAssertKind)
	}
	if err != nil {
		var rej *explorer.RejectError
		if errors.As(err, &rej) {
			out.Code, out.Reason = rej.Code, rej.Reason
			s.m.assertsRejected.Add(1)
			s.event("assert-rejected", fmt.Sprintf("%s %s in %s: %s", kind, varName, loopID, rej.Reason))
			return out, nil
		}
		return nil, err
	}
	out.Accepted = true
	out.Warnings = warnings
	out.Reanalysis = s.ex.LastInc
	out.Guru = s.guruLocked()
	s.asserts++
	s.acceptedLog = append(s.acceptedLog, AssertRecord{Kind: kind, Loop: loopID, Var: varName})
	s.m.assertsAccepted.Add(1)
	s.m.recordInc(s.ex.LastInc)
	s.event("assert", fmt.Sprintf("%s %s in %s: recomputed %d summaries, reused %d",
		kind, varName, loopID, out.Reanalysis.Recomputed, out.Reanalysis.Reused))
	return out, nil
}

// Why explains one loop's verdict.
func (s *Session) Why(loopID string) (*explorer.WhyReport, error) {
	s.m.touch(s)
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.ex.Why(loopID)
	if err == nil {
		s.event("why", loopID)
	}
	return r, err
}

// SliceReport is the session /slice response.
type SliceReport struct {
	Kind string `json:"kind"`
	Proc string `json:"proc"`
	Var  string `json:"var,omitempty"`
	Line int    `json:"line"`
	// Procs maps procedure name to the sorted slice lines in it.
	Procs map[string][]int `json:"procs"`
}

// Slice computes a program/data/control slice anchored in this session's
// program. Errors are the slice package's sentinel errors.
func (s *Session) Slice(kind, proc, varName string, line int) (*SliceReport, error) {
	s.m.touch(s)
	s.mu.Lock()
	defer s.mu.Unlock()
	procs, kindN, err := slice.Query(s.ex.Graph(), kind, proc, varName, line)
	if err != nil {
		return nil, err
	}
	s.event("slice", fmt.Sprintf("%s slice at %s:%d", kindN, proc, line))
	return &SliceReport{Kind: kindN, Proc: proc, Var: varName, Line: line, Procs: procs}, nil
}
