// Package symbolic implements the scalar symbolic analysis of §2.4: it finds
// loop invariants and induction relationships, propagates constants, and
// determines affine relationships between scalar variables, so that array
// subscripts and loop bounds can be expressed as affine (lin.Expr) functions
// of loop indices and symbolic constants.
//
// The Evaluator is driven in program order by the array data-flow pass: it
// maintains, per scalar, the current value as an affine expression over
//   - enclosing loop index variables (named by their symbol name),
//   - entry values of invariant scalars (named by their symbol name), and
//   - opaque fresh unknowns ("%NAME.k") for values it cannot express.
//
// Unknowns created inside a loop body are loop-variant: an array section
// whose subscript depends on one cannot be treated as the same location on
// every iteration, which the summary pass uses to degrade must-write
// sections (the paper's precision/conservativeness rule in §5.2.1).
package symbolic

import (
	"fmt"
	"sort"
	"strings"

	"suifx/internal/ir"
	"suifx/internal/lin"
	"suifx/internal/modref"
)

// VariantPrefix marks fresh loop-variant unknown variable names.
const VariantPrefix = "%"

// IsVariantVar reports whether a symbolic variable name denotes a
// loop-variant unknown.
func IsVariantVar(v string) bool { return strings.HasPrefix(v, VariantPrefix) }

type binding struct {
	e       lin.Expr
	variant bool // value may differ between iterations of some live loop
}

// Evaluator tracks scalar values through a program-order walk.
type Evaluator struct {
	MR    *modref.Info
	Proc  *ir.Proc
	env   map[*ir.Symbol]binding
	fresh *int
	depth int // current loop nesting depth
	// varsOfDepth records, per depth, the variant names created there so a
	// loop closure can project exactly those.
	created map[int][]string
}

// NewEvaluator returns a fresh evaluator at procedure entry: every scalar is
// bound to its own (invariant) entry name.
func NewEvaluator(mr *modref.Info, proc *ir.Proc) *Evaluator {
	c := 0
	return &Evaluator{
		MR: mr, Proc: proc,
		env:     map[*ir.Symbol]binding{},
		fresh:   &c,
		created: map[int][]string{},
	}
}

func (ev *Evaluator) clone() *Evaluator {
	out := &Evaluator{MR: ev.MR, Proc: ev.Proc, fresh: ev.fresh, depth: ev.depth, created: ev.created}
	out.env = make(map[*ir.Symbol]binding, len(ev.env))
	for k, v := range ev.env {
		out.env[k] = v
	}
	return out
}

// lookup returns the current value of a scalar, lazily binding unseen
// scalars to their entry names (invariant).
func (ev *Evaluator) lookup(sym *ir.Symbol) binding {
	if b, ok := ev.env[sym]; ok {
		return b
	}
	b := binding{e: lin.Var(sym.Name)}
	ev.env[sym] = b
	return b
}

// freshName mints an opaque unknown for sym; it is variant when created at
// loop depth > 0.
func (ev *Evaluator) freshName(sym *ir.Symbol) binding {
	*ev.fresh++
	variant := ev.depth > 0
	name := fmt.Sprintf("%s.%d", sym.Name, *ev.fresh)
	if variant {
		name = VariantPrefix + name
		ev.created[ev.depth] = append(ev.created[ev.depth], name)
	} else {
		name = "&" + name
	}
	return binding{e: lin.Var(name), variant: variant}
}

// Affine converts an IR expression to an affine lin.Expr under the current
// environment. ok is false for non-affine expressions (products of
// variables, divisions, array loads, intrinsics). variant reports whether
// the result depends on a loop-variant unknown.
func (ev *Evaluator) Affine(e ir.Expr) (out lin.Expr, ok, variant bool) {
	switch x := e.(type) {
	case *ir.Const:
		if x.Val != float64(int64(x.Val)) {
			return lin.Expr{}, false, false
		}
		return lin.NewExpr(int64(x.Val)), true, false
	case *ir.VarRef:
		if x.Sym.IsArray() {
			return lin.Expr{}, false, false
		}
		b := ev.lookup(x.Sym)
		return b.e.Clone(), true, b.variant || exprHasVariant(b.e)
	case *ir.Un:
		if x.Op != "-" {
			return lin.Expr{}, false, false
		}
		v, ok, vr := ev.Affine(x.X)
		if !ok {
			return lin.Expr{}, false, false
		}
		return v.Scale(-1), true, vr
	case *ir.Bin:
		switch x.Op {
		case ir.OpAdd, ir.OpSub:
			l, ok1, v1 := ev.Affine(x.L)
			r, ok2, v2 := ev.Affine(x.R)
			if !ok1 || !ok2 {
				return lin.Expr{}, false, false
			}
			if x.Op == ir.OpAdd {
				return l.Add(r), true, v1 || v2
			}
			return l.Sub(r), true, v1 || v2
		case ir.OpMul:
			l, ok1, v1 := ev.Affine(x.L)
			r, ok2, v2 := ev.Affine(x.R)
			if !ok1 || !ok2 {
				return lin.Expr{}, false, false
			}
			if l.IsConst() {
				return r.Scale(l.Const), true, v2
			}
			if r.IsConst() {
				return l.Scale(r.Const), true, v1
			}
			return lin.Expr{}, false, false
		}
	}
	return lin.Expr{}, false, false
}

func exprHasVariant(e lin.Expr) bool {
	for v := range e.Coef {
		if IsVariantVar(v) {
			return true
		}
	}
	return false
}

// ExprHasVariant reports whether an affine expression references any
// loop-variant unknown.
func ExprHasVariant(e lin.Expr) bool { return exprHasVariant(e) }

// AssignScalar records the assignment sym = rhs.
func (ev *Evaluator) AssignScalar(sym *ir.Symbol, rhs ir.Expr) {
	if sym.IsArray() {
		return
	}
	if v, ok, variant := ev.Affine(rhs); ok {
		ev.env[sym] = binding{e: v, variant: variant}
		return
	}
	ev.env[sym] = ev.freshName(sym)
}

// Kill invalidates a scalar's value (e.g. it was modified by a call or READ).
func (ev *Evaluator) Kill(sym *ir.Symbol) {
	if sym.IsArray() {
		return
	}
	ev.env[sym] = ev.freshName(sym)
}

// KillCall invalidates every scalar the call may modify.
func (ev *Evaluator) KillCall(c *ir.Call) {
	for _, sym := range ev.MR.CallMods(ev.Proc, c) {
		ev.Kill(sym)
	}
}

// LoopContext describes one loop's index constraints for section building.
type LoopContext struct {
	IndexVar string      // symbolic name of the loop index
	Bounds   *lin.System // constraints on IndexVar (may be partial)
	Exact    bool        // both bounds affine and |step| == 1
	Variant  []string    // variant unknown names minted inside this body
}

// EnterLoopBody prepares the evaluator for a walk over the loop body:
// scalars modified anywhere in the body become variant unknowns (their
// iteration-entry values are unknown), and the index variable is bound to
// its own name with bound constraints. Call the returned leave function
// after the body walk (it kills the index and returns the loop's context,
// now including all variant names minted in the body).
func (ev *Evaluator) EnterLoopBody(l *ir.DoLoop) (lc *LoopContext, leave func() *LoopContext) {
	ev.depth++
	ev.created[ev.depth] = nil

	killed := ev.MR.ModifiedScalars(ev.Proc, l.Body)
	lo, okLo, vLo := ev.Affine(l.Lo)
	hi, okHi, vHi := ev.Affine(l.Hi)
	step := int64(1)
	okStep := true
	if l.Step != nil {
		if s, ok, sv := ev.Affine(l.Step); ok && !sv && s.IsConst() && s.Const != 0 {
			step = s.Const
		} else {
			okStep = false
		}
	}
	// Sorted order: Kill mints numbered fresh names, so iteration order must
	// be deterministic for reproducible summaries.
	for _, sym := range sortSymSet(killed) {
		if sym != l.Index {
			ev.Kill(sym)
		}
	}
	idx := l.Index.Name
	ev.env[l.Index] = binding{e: lin.Var(idx)}

	// Bounds that reference loop-variant unknowns are still exact within one
	// iteration of the loop that minted them; the variant names are dropped
	// when that outer loop closes.
	_, _ = vLo, vHi
	sys := lin.NewSystem()
	exact := okLo && okHi && okStep && (step == 1 || step == -1)
	if step < 0 {
		lo, hi = hi, lo
		okLo, okHi = okHi, okLo
	}
	if okLo {
		sys.AddGE(lin.Var(idx).Sub(lo)) // idx >= lo
	}
	if okHi {
		sys.AddGE(hi.Sub(lin.Var(idx))) // idx <= hi
	}
	lc = &LoopContext{IndexVar: idx, Bounds: sys, Exact: exact}

	depth := ev.depth
	leave = func() *LoopContext {
		lc.Variant = ev.created[depth]
		delete(ev.created, depth)
		ev.depth--
		ev.Kill(l.Index) // Fortran leaves the index at an implementation value
		return lc
	}
	return lc, leave
}

// Branch returns two child evaluators for the arms of an IF. MergeBranches
// folds them back: bindings that agree survive, others become fresh.
func (ev *Evaluator) Branch() (*Evaluator, *Evaluator) { return ev.clone(), ev.clone() }

// MergeBranches merges the post-states of two IF arms back into ev.
func (ev *Evaluator) MergeBranches(a, b *Evaluator) {
	syms := map[*ir.Symbol]bool{}
	for s := range a.env {
		syms[s] = true
	}
	for s := range b.env {
		syms[s] = true
	}
	// Sorted order: disagreeing bindings mint numbered fresh names.
	for _, s := range sortSymSet(syms) {
		ba, oka := a.env[s]
		bb, okb := b.env[s]
		switch {
		case oka && okb && ba.e.Equal(bb.e):
			ev.env[s] = binding{e: ba.e, variant: ba.variant || bb.variant}
		case !oka && !okb:
			// untouched
		default:
			ev.env[s] = ev.freshName(s)
		}
	}
}

// sortSymSet returns the set's symbols ordered by name (names are unique
// within a procedure's scope).
func sortSymSet(set map[*ir.Symbol]bool) []*ir.Symbol {
	out := make([]*ir.Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Value returns the current affine value of a scalar.
func (ev *Evaluator) Value(sym *ir.Symbol) lin.Expr { return ev.lookup(sym).e.Clone() }

// ConstValue returns the scalar's value if currently a known constant.
func (ev *Evaluator) ConstValue(sym *ir.Symbol) (int64, bool) {
	b := ev.lookup(sym)
	if b.e.IsConst() {
		return b.e.Const, true
	}
	return 0, false
}
