package symbolic

import (
	"testing"

	"suifx/internal/ir"
	"suifx/internal/lin"
	"suifx/internal/minif"
	"suifx/internal/modref"
)

func setup(t *testing.T, src string) (*ir.Program, *Evaluator) {
	t.Helper()
	prog, err := minif.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	mr := modref.Analyze(prog)
	return prog, NewEvaluator(mr, prog.Main())
}

func TestAffineConversion(t *testing.T) {
	prog, ev := setup(t, `
      PROGRAM main
      INTEGER i, j, n
      REAL a(10)
      i = 1
      END
`)
	m := prog.Main()
	i, j := m.Lookup("I"), m.Lookup("J")
	// 2*i + j - 3
	e := &ir.Bin{Op: ir.OpSub,
		L: &ir.Bin{Op: ir.OpAdd,
			L: &ir.Bin{Op: ir.OpMul, L: ir.IntConst(2), R: &ir.VarRef{Sym: i}},
			R: &ir.VarRef{Sym: j}},
		R: ir.IntConst(3)}
	v, ok, variant := ev.Affine(e)
	if !ok || variant {
		t.Fatalf("affine failed: ok=%v variant=%v", ok, variant)
	}
	want := lin.Term("I", 2).Add(lin.Var("J")).AddConst(-3)
	if !v.Equal(want) {
		t.Fatalf("got %v want %v", v, want)
	}
	// i * j is not affine.
	if _, ok, _ := ev.Affine(&ir.Bin{Op: ir.OpMul, L: &ir.VarRef{Sym: i}, R: &ir.VarRef{Sym: j}}); ok {
		t.Fatal("i*j must not be affine")
	}
	// Array loads are not affine.
	a := m.Lookup("A")
	if _, ok, _ := ev.Affine(&ir.ArrayRef{Sym: a, Idx: []ir.Expr{ir.IntConst(1)}}); ok {
		t.Fatal("array load must not be affine")
	}
}

func TestForwardSubstitutionAndKill(t *testing.T) {
	prog, ev := setup(t, `
      PROGRAM main
      INTEGER k, n
      k = 1
      END
`)
	m := prog.Main()
	k, n := m.Lookup("K"), m.Lookup("N")
	ev.AssignScalar(k, ir.IntConst(5))
	if v, ok := ev.ConstValue(k); !ok || v != 5 {
		t.Fatalf("k = %v, %v", v, ok)
	}
	// k = k + 1 builds on the previous value.
	ev.AssignScalar(k, &ir.Bin{Op: ir.OpAdd, L: &ir.VarRef{Sym: k}, R: ir.IntConst(1)})
	if v, ok := ev.ConstValue(k); !ok || v != 6 {
		t.Fatalf("after increment k = %v, %v", v, ok)
	}
	// n = k + 2 in terms of constants.
	ev.AssignScalar(n, &ir.Bin{Op: ir.OpAdd, L: &ir.VarRef{Sym: k}, R: ir.IntConst(2)})
	if v, ok := ev.ConstValue(n); !ok || v != 8 {
		t.Fatalf("n = %v, %v", v, ok)
	}
	// Kill makes it opaque but invariant at depth 0.
	ev.Kill(k)
	val := ev.Value(k)
	if val.IsConst() {
		t.Fatal("killed scalar should be opaque")
	}
	if ExprHasVariant(val) {
		t.Fatal("depth-0 unknowns are invariant")
	}
}

func TestLoopContextAndVariance(t *testing.T) {
	prog, ev := setup(t, `
      PROGRAM main
      INTEGER i, k, n
      REAL a(10)
      n = 10
      DO 10 i = 1, n
        k = i + 1
10    CONTINUE
      END
`)
	m := prog.Main()
	loop := m.Loops()[0]
	ev.AssignScalar(m.Lookup("N"), ir.IntConst(10))
	lc, leave := ev.EnterLoopBody(loop)
	if !lc.Exact {
		t.Fatal("constant-bound loop should be exact")
	}
	if !lc.Bounds.ContainsPoint(map[string]int64{"I": 5}) ||
		lc.Bounds.ContainsPoint(map[string]int64{"I": 11}) {
		t.Fatalf("bounds wrong: %v", lc.Bounds)
	}
	// k is modified in the body: its entry value is a variant unknown.
	kv := ev.Value(m.Lookup("K"))
	if !ExprHasVariant(kv) {
		t.Fatalf("k should be variant at body entry: %v", kv)
	}
	// After k = i + 1 it is affine in the index.
	ev.AssignScalar(m.Lookup("K"), &ir.Bin{Op: ir.OpAdd, L: &ir.VarRef{Sym: m.Lookup("I")}, R: ir.IntConst(1)})
	kv2 := ev.Value(m.Lookup("K"))
	if !kv2.Equal(lin.Var("I").AddConst(1)) {
		t.Fatalf("k = %v, want I+1", kv2)
	}
	full := leave()
	if len(full.Variant) == 0 {
		t.Fatal("the loop should record its variant names")
	}
	if full.IndexVar != "I" {
		t.Fatalf("index var = %s", full.IndexVar)
	}
}

func TestBranchMerge(t *testing.T) {
	prog, ev := setup(t, `
      PROGRAM main
      INTEGER a, b
      a = 1
      END
`)
	m := prog.Main()
	a, b := m.Lookup("A"), m.Lookup("B")
	ev.AssignScalar(a, ir.IntConst(1))
	ev.AssignScalar(b, ir.IntConst(2))
	thenEv, elseEv := ev.Branch()
	thenEv.AssignScalar(a, ir.IntConst(7)) // differs
	// b untouched in both arms.
	ev.MergeBranches(thenEv, elseEv)
	if _, ok := ev.ConstValue(a); ok {
		t.Fatal("a differs across arms: must be unknown")
	}
	if v, ok := ev.ConstValue(b); !ok || v != 2 {
		t.Fatal("b agrees across arms: must survive")
	}
	_ = prog
}

func TestVariantVarNaming(t *testing.T) {
	if !IsVariantVar("%K.3") || IsVariantVar("&K.3") || IsVariantVar("K") {
		t.Fatal("variant prefix detection")
	}
}
