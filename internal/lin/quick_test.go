package lin

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randSystem builds a random small system over variables i, j with bounded
// coefficients, guaranteed to contain the point it is seeded around.
func randSystem(r *rand.Rand) (*System, map[string]int64) {
	pt := map[string]int64{"i": r.Int63n(21) - 10, "j": r.Int63n(21) - 10}
	s := NewSystem()
	for k := 0; k < 1+r.Intn(4); k++ {
		e := Term("i", r.Int63n(7)-3).Add(Term("j", r.Int63n(7)-3))
		v, _ := e.Eval(pt)
		// Shift the constant so the seed point satisfies e + c >= 0.
		slack := r.Int63n(5)
		s.AddGE(e.AddConst(-v + slack))
	}
	return s, pt
}

func TestQuickSeedPointSatisfied(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, pt := randSystem(r)
		return s.ContainsPoint(pt) && !s.IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Projection soundness: if a point is in S, its restriction to the kept
// variables is in project(S).
func TestQuickProjectionSound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, pt := randSystem(r)
		p := s.Eliminate("j")
		return p.ContainsPoint(map[string]int64{"i": pt["i"]})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Intersection is contained in both operands.
func TestQuickIntersectionContained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, pa := randSystem(r)
		b, _ := randSystem(r)
		x := a.Intersect(b)
		if x.IsEmpty() {
			return true
		}
		// Any point of the intersection must be in both; test with the seed
		// point of a when it happens to be in b.
		if b.ContainsPoint(pa) {
			return x.ContainsPoint(pa) && x.ContainedIn(a) && x.ContainedIn(b)
		}
		return x.ContainedIn(a) && x.ContainedIn(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Containment is consistent with point membership on a grid sample.
func TestQuickContainmentConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := randSystem(r)
		b, _ := randSystem(r)
		if !a.ContainedIn(b) {
			return true // nothing claimed
		}
		for i := int64(-12); i <= 12; i += 3 {
			for j := int64(-12); j <= 12; j += 3 {
				pt := map[string]int64{"i": i, "j": j}
				if a.ContainsPoint(pt) && !b.ContainsPoint(pt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Section subtraction over-approximates: every point of a \setminus b
// (sampled) is in Subtract(a,b).
func TestQuickSubtractOverApprox(t *testing.T) {
	f := func(lo1, hi1, lo2, hi2 int8) bool {
		a := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(int64(lo1)), NewExpr(int64(hi1))))
		b := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(int64(lo2)), NewExpr(int64(hi2))))
		d := a.Subtract(b)
		for x := int64(-130); x <= 130; x++ {
			inA := int64(lo1) <= x && x <= int64(hi1)
			inB := int64(lo2) <= x && x <= int64(hi2)
			if inA && !inB && !d.ContainsIndex([]int64{x}, nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Union membership equals membership in either operand (for exact interval
// sections, where containment tests are precise).
func TestQuickUnionMembership(t *testing.T) {
	f := func(lo1, hi1, lo2, hi2 int8) bool {
		a := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(int64(lo1)), NewExpr(int64(hi1))))
		b := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(int64(lo2)), NewExpr(int64(hi2))))
		u := a.Union(b)
		for x := int64(-130); x <= 130; x += 7 {
			want := (int64(lo1) <= x && x <= int64(hi1)) || (int64(lo2) <= x && x <= int64(hi2))
			if u.ContainsIndex([]int64{x}, nil) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormalizePreservesIntegerPoints(t *testing.T) {
	f := func(a, b, c int8) bool {
		if a == 0 && b == 0 {
			return true
		}
		e := Term("i", int64(a)).Add(Term("j", int64(b))).AddConst(int64(c))
		raw := Constraint{e}
		norm := raw.normalize()
		for i := int64(-10); i <= 10; i += 2 {
			for j := int64(-10); j <= 10; j += 2 {
				pt := map[string]int64{"i": i, "j": j}
				rv, _ := raw.E.Eval(pt)
				nv, _ := norm.E.Eval(pt)
				if (rv >= 0) != (nv >= 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
