package lin

import (
	"fmt"
	"sort"
	"strings"
)

// DimVar returns the canonical variable name for the i-th (0-based) array
// dimension inside a section's constraint systems.
func DimVar(i int) string { return fmt.Sprintf("$d%d", i) }

// IsDimVar reports whether v names an array dimension variable.
func IsDimVar(v string) bool { return strings.HasPrefix(v, "$d") }

// A Section describes the set of elements of one array touched by some code
// region: a union of polyhedra over the dimension variables $d0..$d{n-1} and
// any symbolic program variables (loop indices, bounds). An empty Polys slice
// is the empty section. Exact == false marks a conservative over-approximation
// (e.g. a non-affine subscript widened to the whole dimension).
type Section struct {
	NDim  int
	Polys []*System
	Exact bool
}

// EmptySection returns the empty section for an ndim-dimensional array.
func EmptySection(ndim int) *Section { return &Section{NDim: ndim, Exact: true} }

// WholeSection returns the section covering the entire array (no constraints
// on the dimension variables), marked inexact.
func WholeSection(ndim int) *Section {
	return &Section{NDim: ndim, Polys: []*System{NewSystem()}, Exact: false}
}

// NewSection returns a section consisting of the single polyhedron sys.
func NewSection(ndim int, sys *System) *Section {
	return &Section{NDim: ndim, Polys: []*System{sys}, Exact: true}
}

// Clone returns an independent copy. The polyhedra are shared: a System
// stored in a Section is never mutated in place (all section and summary
// operations replace rather than update), so only the Polys slice needs to
// be fresh.
func (s *Section) Clone() *Section {
	out := &Section{NDim: s.NDim, Exact: s.Exact}
	if len(s.Polys) > 0 {
		out.Polys = append(make([]*System, 0, len(s.Polys)), s.Polys...)
	}
	return out
}

// IsEmpty reports whether the section is definitely empty.
func (s *Section) IsEmpty() bool {
	for _, p := range s.Polys {
		if !p.IsEmpty() {
			return false
		}
	}
	return true
}

// Union returns s ∪ o, merging polyhedra subsumed by existing ones.
func (s *Section) Union(o *Section) *Section {
	out := s.Clone()
	out.Exact = s.Exact && o.Exact
	for _, p := range o.Polys {
		out.addPoly(p)
	}
	return out
}

func (s *Section) addPoly(p *System) {
	if p.IsEmpty() {
		return
	}
	for _, q := range s.Polys {
		if p.ContainedIn(q) {
			return
		}
	}
	kept := s.Polys[:0]
	for _, q := range s.Polys {
		if !q.ContainedIn(p) {
			kept = append(kept, q)
		}
	}
	s.Polys = append(kept, p)
}

// Intersect returns s ∩ o (pairwise polyhedron intersection).
func (s *Section) Intersect(o *Section) *Section {
	out := &Section{NDim: s.NDim, Exact: s.Exact && o.Exact}
	for _, p := range s.Polys {
		for _, q := range o.Polys {
			r := p.Intersect(q)
			if !r.IsEmpty() {
				out.addPoly(r)
			}
		}
	}
	return out
}

// Intersects reports whether s ∩ o may be nonempty (conservative: false means
// definitely disjoint).
func (s *Section) Intersects(o *Section) bool { return !s.Intersect(o).IsEmpty() }

// ContainedIn reports whether s ⊆ o definitely holds. Each polyhedron of s
// must be contained in a single polyhedron of o (sound but incomplete for
// genuinely split covers).
func (s *Section) ContainedIn(o *Section) bool {
	for _, p := range s.Polys {
		ok := false
		for _, q := range o.Polys {
			if p.ContainedIn(q) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Subtract returns an over-approximation of s \ o. Each polyhedron of o is
// subtracted in turn: polyhedra of s wholly contained are dropped, and a cut
// is performed exactly when it stays convex (the covering polyhedron differs
// along a single constraint); otherwise the minuend polyhedron is kept whole.
// This is sound for upwards-exposed-read computation, which must
// over-approximate.
func (s *Section) Subtract(o *Section) *Section {
	cur := append(make([]*System, 0, len(s.Polys)), s.Polys...)
	for _, q := range o.Polys {
		var next []*System
		for _, p := range cur {
			if p.ContainedIn(q) {
				continue
			}
			if cut, ok := exactCut(p, q); ok {
				next = append(next, cut...)
				continue
			}
			next = append(next, p)
		}
		cur = next
	}
	out := &Section{NDim: s.NDim, Exact: false}
	for _, p := range cur {
		out.addPoly(p)
	}
	if len(out.Polys) == 0 {
		out.Exact = true
	}
	return out
}

// exactCut computes p \ q as the union of p ∧ ¬c over the constraints c of
// q not already implied by p — which is exactly p \ q (a point escapes q iff
// it violates some constraint). Returns ok=false (keep p whole) when more
// than maxCutConstraints constraints are missing, to bound the blowup.
func exactCut(p, q *System) ([]*System, bool) {
	const maxCutConstraints = 4
	var missing []Constraint
	for _, c := range q.Cons {
		if !p.Implies(c) {
			missing = append(missing, c)
			if len(missing) > maxCutConstraints {
				return nil, false
			}
		}
	}
	var out []*System
	for _, c := range missing {
		r := p.Clone()
		r.AddGE(c.E.Scale(-1).AddConst(-1)) // ¬(e>=0) is -e-1 >= 0
		if !r.IsEmpty() {
			out = append(out, r)
		}
	}
	return out, true
}

// Project eliminates the given variables (typically a loop index) from every
// polyhedron — the paper's closure operator at loop boundaries.
func (s *Section) Project(vars ...string) *Section {
	out := &Section{NDim: s.NDim, Exact: s.Exact}
	for _, p := range s.Polys {
		out.addPoly(p.EliminateVars(vars...))
	}
	return out
}

// Substitute applies a variable substitution to every polyhedron (parameter
// mapping across call sites).
func (s *Section) Substitute(v string, repl Expr) *Section {
	out := &Section{NDim: s.NDim, Exact: s.Exact}
	for _, p := range s.Polys {
		out.Polys = append(out.Polys, p.Substitute(v, repl))
	}
	return out
}

// Rename renames a symbolic variable in every polyhedron.
func (s *Section) Rename(old, new string) *Section {
	out := &Section{NDim: s.NDim, Exact: s.Exact}
	for _, p := range s.Polys {
		out.Polys = append(out.Polys, p.Rename(old, new))
	}
	return out
}

// SymVars returns the non-dimension variables mentioned in the section.
func (s *Section) SymVars() []string {
	set := map[string]bool{}
	for _, p := range s.Polys {
		for _, v := range p.Vars() {
			if !IsDimVar(v) {
				set[v] = true
			}
		}
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// ContainsIndex reports whether the element with the given (0-based by
// convention of the caller) index tuple may belong to the section under the
// symbolic environment env.
func (s *Section) ContainsIndex(idx []int64, env map[string]int64) bool {
	full := make(map[string]int64, len(env)+len(idx))
	for k, v := range env {
		full[k] = v
	}
	for i, v := range idx {
		full[DimVar(i)] = v
	}
	for _, p := range s.Polys {
		ok := true
		for _, c := range p.Cons {
			val, err := c.E.Eval(full)
			if err != nil {
				// Unknown symbol: conservatively possible.
				ok = true
				break
			}
			if val < 0 {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// String renders the section deterministically.
func (s *Section) String() string {
	if len(s.Polys) == 0 {
		return "∅"
	}
	parts := make([]string, len(s.Polys))
	for i, p := range s.Polys {
		parts[i] = p.String()
	}
	sort.Strings(parts)
	tag := ""
	if !s.Exact {
		tag = "~"
	}
	return tag + strings.Join(parts, " ∪ ")
}
