// Package lin implements systems of integer linear inequalities and the
// polyhedral operations the SUIF array analyses are built on: intersection,
// union-of-polyhedra array sections, Fourier–Motzkin projection (the paper's
// "closure" operator), emptiness and containment tests.
//
// Array regions are represented, exactly as in the paper (§2.4, §5.2.1), as
// sets of systems of linear inequalities whose integer solutions are the
// accessed index tuples.
package lin

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Expr is an affine expression: a sum of integer-coefficient terms over named
// variables plus an integer constant. The zero value is the constant 0.
type Expr struct {
	Coef  map[string]int64
	Const int64
}

// NewExpr returns the affine expression with the given constant term.
func NewExpr(c int64) Expr { return Expr{Const: c} }

// Var returns the expression consisting of the single variable v.
func Var(v string) Expr { return Term(v, 1) }

// Term returns the expression c*v.
func Term(v string, c int64) Expr {
	if c == 0 {
		return Expr{}
	}
	return Expr{Coef: map[string]int64{v: c}}
}

// Clone returns a deep copy of e.
func (e Expr) Clone() Expr {
	out := Expr{Const: e.Const}
	if len(e.Coef) > 0 {
		out.Coef = make(map[string]int64, len(e.Coef))
		for v, c := range e.Coef {
			out.Coef[v] = c
		}
	}
	return out
}

// CoefOf returns the coefficient of variable v (0 if absent).
func (e Expr) CoefOf(v string) int64 { return e.Coef[v] }

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	out := e.Clone()
	out.Const += o.Const
	for v, c := range o.Coef {
		out.addTerm(v, c)
	}
	return out
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Scale(-1)) }

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	out := Expr{Const: e.Const * k}
	if len(e.Coef) > 0 {
		out.Coef = make(map[string]int64, len(e.Coef))
		for v, c := range e.Coef {
			out.Coef[v] = c * k
		}
	}
	return out
}

// AddConst returns e + k.
func (e Expr) AddConst(k int64) Expr {
	out := e.Clone()
	out.Const += k
	return out
}

func (e *Expr) addTerm(v string, c int64) {
	if c == 0 {
		return
	}
	if e.Coef == nil {
		e.Coef = make(map[string]int64)
	}
	n := e.Coef[v] + c
	if n == 0 {
		delete(e.Coef, v)
	} else {
		e.Coef[v] = n
	}
}

// IsConst reports whether e has no variable terms.
func (e Expr) IsConst() bool { return len(e.Coef) == 0 }

// Vars returns the variables of e in sorted order.
func (e Expr) Vars() []string {
	vs := make([]string, 0, len(e.Coef))
	for v := range e.Coef {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Eval evaluates e under the given assignment. Unassigned variables are an
// error so callers never silently treat a symbolic value as zero.
func (e Expr) Eval(env map[string]int64) (int64, error) {
	sum := e.Const
	for v, c := range e.Coef {
		val, ok := env[v]
		if !ok {
			return 0, fmt.Errorf("lin: unbound variable %q", v)
		}
		sum += c * val
	}
	return sum, nil
}

// Substitute returns e with every occurrence of v replaced by repl.
func (e Expr) Substitute(v string, repl Expr) Expr {
	c, ok := e.Coef[v]
	if !ok {
		return e.Clone()
	}
	out := e.Clone()
	delete(out.Coef, v)
	return out.Add(repl.Scale(c))
}

// Rename returns e with variable old renamed to new.
func (e Expr) Rename(old, new string) Expr {
	c, ok := e.Coef[old]
	if !ok {
		return e.Clone()
	}
	out := e.Clone()
	delete(out.Coef, old)
	out.addTerm(new, c)
	return out
}

// Equal reports whether e and o denote the same affine function.
func (e Expr) Equal(o Expr) bool {
	if e.Const != o.Const || len(e.Coef) != len(o.Coef) {
		return false
	}
	for v, c := range e.Coef {
		if o.Coef[v] != c {
			return false
		}
	}
	return true
}

// String renders e deterministically, e.g. "2*i - j + 3".
func (e Expr) String() string {
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		c := e.Coef[v]
		switch {
		case first && c == 1:
			b.WriteString(v)
		case first && c == -1:
			b.WriteString("-" + v)
		case first:
			fmt.Fprintf(&b, "%d*%s", c, v)
		case c == 1:
			b.WriteString(" + " + v)
		case c == -1:
			b.WriteString(" - " + v)
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, v)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, v)
		}
		first = false
	}
	switch {
	case first:
		fmt.Fprintf(&b, "%d", e.Const)
	case e.Const > 0:
		fmt.Fprintf(&b, " + %d", e.Const)
	case e.Const < 0:
		fmt.Fprintf(&b, " - %d", -e.Const)
	}
	return b.String()
}

// key renders a canonical byte form of e, cheaper than String, for use as a
// dedup map key. Same affine function ⇔ same key.
func (e Expr) key() string {
	b := make([]byte, 0, 16+12*len(e.Coef))
	b = strconv.AppendInt(b, e.Const, 10)
	for _, v := range e.Vars() {
		b = append(b, '|')
		b = append(b, v...)
		b = append(b, ':')
		b = strconv.AppendInt(b, e.Coef[v], 10)
	}
	return string(b)
}

// linComb returns ka*a + kb*b with a single map allocation — the inner-loop
// combination step of Fourier–Motzkin elimination.
func linComb(ka int64, a Expr, kb int64, b Expr) Expr {
	out := Expr{
		Const: ka*a.Const + kb*b.Const,
		Coef:  make(map[string]int64, len(a.Coef)+len(b.Coef)),
	}
	for v, c := range a.Coef {
		out.Coef[v] = ka * c
	}
	for v, c := range b.Coef {
		n := out.Coef[v] + kb*c
		if n == 0 {
			delete(out.Coef, v)
		} else {
			out.Coef[v] = n
		}
	}
	return out
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
