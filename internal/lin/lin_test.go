package lin

import (
	"testing"
)

func TestExprArithmetic(t *testing.T) {
	e := Var("i").Scale(2).Add(NewExpr(3)).Sub(Var("j"))
	if got := e.String(); got != "2*i - j + 3" {
		t.Fatalf("String = %q", got)
	}
	v, err := e.Eval(map[string]int64{"i": 5, "j": 4})
	if err != nil || v != 9 {
		t.Fatalf("Eval = %d, %v", v, err)
	}
	if _, err := e.Eval(map[string]int64{"i": 5}); err == nil {
		t.Fatal("Eval with unbound variable should error")
	}
}

func TestExprSubstitute(t *testing.T) {
	e := Var("i").Scale(2).Add(Var("j")) // 2i + j
	got := e.Substitute("i", Var("k").AddConst(1))
	want := Var("k").Scale(2).Add(Var("j")).AddConst(2)
	if !got.Equal(want) {
		t.Fatalf("Substitute = %v, want %v", got, want)
	}
}

func TestExprCancellation(t *testing.T) {
	e := Var("i").Sub(Var("i"))
	if !e.IsConst() || e.Const != 0 {
		t.Fatalf("i - i = %v, want 0", e)
	}
}

func TestSystemEmptiness(t *testing.T) {
	// i >= 1, i <= 0 is empty.
	s := NewSystem().AddGE(Var("i").AddConst(-1)).AddGE(Var("i").Scale(-1))
	if !s.IsEmpty() {
		t.Fatal("contradictory system not detected as empty")
	}
	// 1 <= i <= 10 is nonempty.
	s2 := NewSystem().AddRange("i", NewExpr(1), NewExpr(10))
	if s2.IsEmpty() {
		t.Fatal("satisfiable system reported empty")
	}
}

func TestSystemEliminate(t *testing.T) {
	// 1 <= i <= n, d = i  -- eliminating i gives 1 <= d <= n.
	s := NewSystem().
		AddRange("i", NewExpr(1), Var("n")).
		AddEq(Var("d").Sub(Var("i")))
	p := s.Eliminate("i")
	// d=0 with n=10 must be excluded; d=5 included.
	if p.ContainsPoint(map[string]int64{"d": 0, "n": 10}) {
		t.Fatalf("projection %v should exclude d=0", p)
	}
	if !p.ContainsPoint(map[string]int64{"d": 5, "n": 10}) {
		t.Fatalf("projection %v should include d=5", p)
	}
}

func TestSystemImplies(t *testing.T) {
	s := NewSystem().AddRange("i", NewExpr(5), NewExpr(10))
	if !s.Implies(Constraint{Var("i").AddConst(-1)}) { // i >= 1
		t.Fatal("5<=i<=10 should imply i>=1")
	}
	if s.Implies(Constraint{Var("i").AddConst(-6)}) { // i >= 6
		t.Fatal("5<=i<=10 should not imply i>=6")
	}
}

func TestSystemContainment(t *testing.T) {
	inner := NewSystem().AddRange("d", NewExpr(2), NewExpr(5))
	outer := NewSystem().AddRange("d", NewExpr(1), NewExpr(10))
	if !inner.ContainedIn(outer) {
		t.Fatal("[2,5] should be contained in [1,10]")
	}
	if outer.ContainedIn(inner) {
		t.Fatal("[1,10] should not be contained in [2,5]")
	}
}

func TestConstraintNormalize(t *testing.T) {
	// 2i - 3 >= 0  =>  i >= 2 over integers (i >= ceil(3/2)).
	c := Constraint{Var("i").Scale(2).AddConst(-3)}.normalize()
	if got := c.E.CoefOf("i"); got != 1 {
		t.Fatalf("coef = %d", got)
	}
	if c.E.Const != -2 {
		t.Fatalf("const = %d, want -2 (i - 2 >= 0)", c.E.Const)
	}
}

func TestSectionUnionIntersect(t *testing.T) {
	a := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(1), NewExpr(5)))
	b := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(4), NewExpr(9)))
	u := a.Union(b)
	for _, i := range []int64{1, 5, 9} {
		if !u.ContainsIndex([]int64{i}, nil) {
			t.Fatalf("union should contain %d", i)
		}
	}
	if u.ContainsIndex([]int64{10}, nil) {
		t.Fatal("union should not contain 10")
	}
	x := a.Intersect(b)
	if !x.ContainsIndex([]int64{4}, nil) || x.ContainsIndex([]int64{2}, nil) {
		t.Fatalf("intersection wrong: %v", x)
	}
}

func TestSectionDisjoint(t *testing.T) {
	a := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(1), NewExpr(5)))
	b := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(6), NewExpr(9)))
	if a.Intersects(b) {
		t.Fatal("[1,5] and [6,9] should be disjoint")
	}
}

func TestSectionSubtract(t *testing.T) {
	// [1,10] \ [1,10] = empty.
	a := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(1), NewExpr(10)))
	if got := a.Subtract(a); !got.IsEmpty() {
		t.Fatalf("a \\ a = %v, want empty", got)
	}
	// [1,10] \ [1,5] = [6,10] (exact single-constraint cut).
	b := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(1), NewExpr(5)))
	diff := a.Subtract(b)
	if diff.ContainsIndex([]int64{5}, nil) {
		t.Fatalf("diff %v should not contain 5", diff)
	}
	if !diff.ContainsIndex([]int64{6}, nil) || !diff.ContainsIndex([]int64{10}, nil) {
		t.Fatalf("diff %v should contain [6,10]", diff)
	}
}

func TestSectionProjectLoopClosure(t *testing.T) {
	// Access a(i) for i in 1..n: section {$d0 = i, 1 <= i <= n};
	// closure (projecting i) is {1 <= $d0 <= n}.
	sys := NewSystem().
		AddEq(Var(DimVar(0)).Sub(Var("i"))).
		AddRange("i", NewExpr(1), Var("n"))
	sec := NewSection(1, sys).Project("i")
	env := map[string]int64{"n": 100}
	if !sec.ContainsIndex([]int64{1}, env) || !sec.ContainsIndex([]int64{100}, env) {
		t.Fatalf("closure %v should contain [1,100]", sec)
	}
	if sec.ContainsIndex([]int64{0}, env) || sec.ContainsIndex([]int64{101}, env) {
		t.Fatalf("closure %v should exclude 0 and 101", sec)
	}
}

func TestSectionContainment2D(t *testing.T) {
	inner := NewSection(2, NewSystem().
		AddRange(DimVar(0), NewExpr(2), NewExpr(3)).
		AddRange(DimVar(1), NewExpr(2), NewExpr(3)))
	outer := NewSection(2, NewSystem().
		AddRange(DimVar(0), NewExpr(1), NewExpr(10)).
		AddRange(DimVar(1), NewExpr(1), NewExpr(10)))
	if !inner.ContainedIn(outer) {
		t.Fatal("2x2 block should be inside 10x10 block")
	}
	if outer.ContainedIn(inner) {
		t.Fatal("10x10 not inside 2x2")
	}
}

func TestWholeSectionInexact(t *testing.T) {
	w := WholeSection(1)
	if w.Exact {
		t.Fatal("whole section must be marked inexact")
	}
	if !w.ContainsIndex([]int64{123456}, nil) {
		t.Fatal("whole section contains everything")
	}
	a := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(1), NewExpr(5)))
	if !a.ContainedIn(w) {
		t.Fatal("any section is contained in the whole section")
	}
}

func TestSectionUnionSubsumption(t *testing.T) {
	a := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(1), NewExpr(10)))
	b := NewSection(1, NewSystem().AddRange(DimVar(0), NewExpr(3), NewExpr(4)))
	u := a.Union(b)
	if len(u.Polys) != 1 {
		t.Fatalf("subsumed polyhedron not merged: %v", u)
	}
}
