package lin

import (
	"sort"
	"strings"
	"sync/atomic"
)

// A Constraint is the inequality Expr >= 0.
type Constraint struct {
	E Expr
}

// String renders the constraint, e.g. "i - 1 >= 0".
func (c Constraint) String() string { return c.E.String() + " >= 0" }

// normalize divides the constraint by the GCD of its coefficients, tightening
// the constant term toward the feasible side (integer reasoning: a*x >= -b
// with gcd g on a implies g*(x') >= -b, i.e. x' >= ceil(-b/g)).
func (c Constraint) normalize() Constraint {
	if len(c.E.Coef) == 0 {
		return c
	}
	var g int64
	for _, co := range c.E.Coef {
		g = gcd64(g, co)
	}
	if g <= 1 {
		return c
	}
	out := Expr{Coef: make(map[string]int64, len(c.E.Coef))}
	for v, co := range c.E.Coef {
		out.Coef[v] = co / g
	}
	// e >= 0  ==  sum + Const >= 0  ==  sum >= -Const; divide by g and
	// round the bound up: sum/g >= ceil(-Const/g), so Const' = floor(Const/g).
	out.Const = floorDiv(c.E.Const, g)
	return Constraint{out}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// A System is a conjunction of linear constraints; its integer solutions form
// (the integer points of) a convex polyhedron. The zero value is the
// unconstrained system (the whole space).
type System struct {
	Cons []Constraint

	// empt caches the result of IsEmpty: 0 unknown, 1 empty, 2 nonempty.
	// Containment tests re-query emptiness of the same unchanged system many
	// times (once per candidate polyhedron in a section), so the cache turns
	// repeated Fourier–Motzkin runs into one. Every in-package mutation of
	// Cons resets it. Atomic because finished systems are shared read-only
	// across concurrent analyses (the summary cache), and the lazy memo write
	// is the one mutation that survives construction; racing fills are
	// idempotent — emptiness is a pure function of Cons.
	empt atomic.Int32
}

const (
	emptUnknown int32 = iota
	emptEmpty
	emptNonEmpty
)

// NewSystem returns an empty (unconstrained) system.
func NewSystem() *System { return &System{} }

// Clone returns an independent copy of s: the constraint slice is fresh, the
// constraint expressions are shared. Exprs are immutable once built (every
// Expr operation allocates), so sharing them is indistinguishable from a deep
// copy. The emptiness cache carries over — the clone has the identical
// constraint set.
func (s *System) Clone() *System {
	out := &System{Cons: make([]Constraint, len(s.Cons))}
	out.empt.Store(s.empt.Load())
	copy(out.Cons, s.Cons)
	return out
}

// AddGE adds the constraint e >= 0 and returns s for chaining.
func (s *System) AddGE(e Expr) *System {
	s.Cons = append(s.Cons, Constraint{e}.normalize())
	s.empt.Store(emptUnknown)
	return s
}

// AddLE adds e <= 0, i.e. -e >= 0.
func (s *System) AddLE(e Expr) *System { return s.AddGE(e.Scale(-1)) }

// AddEq adds e == 0 as a pair of inequalities.
func (s *System) AddEq(e Expr) *System { return s.AddGE(e).AddLE(e) }

// AddRange constrains lo <= v <= hi for affine bounds lo, hi.
func (s *System) AddRange(v string, lo, hi Expr) *System {
	s.AddGE(Var(v).Sub(lo)) // v - lo >= 0
	s.AddGE(hi.Sub(Var(v))) // hi - v >= 0
	return s
}

// Vars returns all variables mentioned in s, sorted.
func (s *System) Vars() []string {
	set := map[string]bool{}
	for _, c := range s.Cons {
		for v := range c.E.Coef {
			set[v] = true
		}
	}
	vs := make([]string, 0, len(set))
	for v := range set {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return vs
}

// Intersect returns the conjunction of s and o.
func (s *System) Intersect(o *System) *System {
	out := &System{Cons: make([]Constraint, 0, len(s.Cons)+len(o.Cons))}
	out.Cons = append(out.Cons, s.Cons...)
	out.Cons = append(out.Cons, o.Cons...)
	return out
}

// Substitute replaces variable v by the affine expression repl everywhere.
func (s *System) Substitute(v string, repl Expr) *System {
	out := &System{Cons: make([]Constraint, 0, len(s.Cons))}
	for _, c := range s.Cons {
		out.Cons = append(out.Cons, Constraint{c.E.Substitute(v, repl)}.normalize())
	}
	return out
}

// Rename renames variable old to new everywhere.
func (s *System) Rename(old, new string) *System {
	out := &System{Cons: make([]Constraint, 0, len(s.Cons))}
	for _, c := range s.Cons {
		out.Cons = append(out.Cons, Constraint{c.E.Rename(old, new)})
	}
	return out
}

// ContainsPoint reports whether the integer assignment env satisfies every
// constraint. Variables of s missing from env make the result false.
func (s *System) ContainsPoint(env map[string]int64) bool {
	for _, c := range s.Cons {
		v, err := c.E.Eval(env)
		if err != nil || v < 0 {
			return false
		}
	}
	return true
}

// Eliminate removes variable v by Fourier–Motzkin elimination, producing a
// system over the remaining variables whose rational solution set is the
// projection of s. This is the paper's closure operator building block.
func (s *System) Eliminate(v string) *System {
	var lower, upper, rest []Constraint
	for _, c := range s.Cons {
		switch co := c.E.CoefOf(v); {
		case co > 0:
			lower = append(lower, c) // co*v + r >= 0  =>  v >= -r/co
		case co < 0:
			upper = append(upper, c) // co*v + r >= 0  =>  v <= r/(-co)
		default:
			rest = append(rest, c)
		}
	}
	out := &System{Cons: rest}
	for _, lo := range lower {
		a := lo.E.CoefOf(v)
		for _, up := range upper {
			b := -up.E.CoefOf(v)
			// b*(a*v + rl) + a*(-b*v + ru') combination removes v:
			// b*lo + a*up >= 0.
			comb := linComb(b, lo.E, a, up.E)
			delete(comb.Coef, v)
			out.Cons = append(out.Cons, Constraint{comb}.normalize())
		}
	}
	return out.simplify()
}

// Project eliminates every variable not in keep, projecting the polyhedron
// onto the kept dimensions.
func (s *System) Project(keep map[string]bool) *System {
	out := s.Clone()
	for _, v := range s.Vars() {
		if !keep[v] {
			out = out.Eliminate(v)
		}
	}
	return out
}

// EliminateVars eliminates each named variable in turn.
func (s *System) EliminateVars(vars ...string) *System {
	out := s
	for _, v := range vars {
		out = out.Eliminate(v)
	}
	return out
}

// IsEmpty reports whether the system has no rational solutions (a sound,
// conservative test for integer emptiness: true means definitely no integer
// points; false means there may be some).
func (s *System) IsEmpty() bool {
	if s == nil {
		return true
	}
	if e := s.empt.Load(); e != emptUnknown {
		return e == emptEmpty
	}
	empty := s.isEmptySlow()
	if empty {
		s.empt.Store(emptEmpty)
	} else {
		s.empt.Store(emptNonEmpty)
	}
	return empty
}

func (s *System) isEmptySlow() bool {
	cur := s.simplify()
	if cur == nil {
		return true
	}
	for _, v := range cur.Vars() {
		cur = cur.Eliminate(v)
		if cur.hasContradiction() {
			return true
		}
	}
	return cur.hasContradiction()
}

func (s *System) hasContradiction() bool {
	for _, c := range s.Cons {
		if c.E.IsConst() && c.E.Const < 0 {
			return true
		}
	}
	return false
}

// simplify drops trivially-true constraints and duplicate constraints, and
// returns nil if a constant contradiction is present. A nil receiver stays nil.
func (s *System) simplify() *System {
	if s == nil {
		return nil
	}
	seen := map[string]bool{}
	out := &System{}
	for _, c := range s.Cons {
		if c.E.IsConst() {
			if c.E.Const < 0 {
				return &System{Cons: []Constraint{{NewExpr(-1)}}}
			}
			continue
		}
		k := c.E.key()
		if !seen[k] {
			seen[k] = true
			out.Cons = append(out.Cons, c)
		}
	}
	return out
}

// Implies reports whether every rational point of s satisfies c, tested by
// checking that s ∧ ¬c (with the integer gap e <= -1) is empty.
func (s *System) Implies(c Constraint) bool {
	// Fast path: some constraint of s dominates c syntactically — identical
	// coefficients with an equal-or-tighter constant (a + x >= 0 with a <= b
	// implies b + x >= 0). This catches the overwhelmingly common case of
	// duplicated constraints without running an elimination.
	for _, sc := range s.Cons {
		if sc.E.Const <= c.E.Const && sameCoefs(sc.E, c.E) {
			return true
		}
	}
	neg := s.Clone()
	// ¬(e >= 0) over integers is e <= -1, i.e. -e - 1 >= 0.
	neg.AddGE(c.E.Scale(-1).AddConst(-1))
	return neg.IsEmpty()
}

func sameCoefs(a, b Expr) bool {
	if len(a.Coef) != len(b.Coef) {
		return false
	}
	for v, c := range a.Coef {
		if b.Coef[v] != c {
			return false
		}
	}
	return true
}

// ContainedIn reports whether s ⊆ o (conservatively: true is definite).
func (s *System) ContainedIn(o *System) bool {
	if s.IsEmpty() {
		return true
	}
	for _, c := range o.Cons {
		if !s.Implies(c) {
			return false
		}
	}
	return true
}

// String renders the system deterministically.
func (s *System) String() string {
	if len(s.Cons) == 0 {
		return "{true}"
	}
	parts := make([]string, len(s.Cons))
	for i, c := range s.Cons {
		parts[i] = c.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}
