package lin

import (
	"testing"
)

// FuzzLinSystem drives the linear-system layer with an arbitrary byte
// program (each byte triple is one operation: add constraint, intersect,
// substitute, eliminate, ...) while maintaining a witness point that every
// added constraint is shifted to satisfy. Invariants checked on every step:
// the witness stays inside the system (so IsEmpty must be false), and
// elimination/projection remain sound for the witness — plus, implicitly,
// that no input sequence panics the solver.
func FuzzLinSystem(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 200, 30, 2, 9, 9, 0, 0, 0, 3, 1, 1, 4, 50, 5})
	f.Add([]byte{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5})
	f.Add([]byte{2, 255, 255, 1, 128, 128, 0, 64, 64, 3, 32, 32})

	vars := []string{"i", "j", "k"}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewSystem()
		pt := map[string]int64{"i": 3, "j": -2, "k": 7}
		check := func(what string) {
			if !s.ContainsPoint(pt) {
				t.Fatalf("%s: witness point fell out of the system %s", what, s)
			}
			if s.IsEmpty() {
				t.Fatalf("%s: system containing the witness reports empty: %s", what, s)
			}
		}
		for i := 0; i+2 < len(data) && len(s.Cons) < 12; i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			v := vars[int(a)%len(vars)]
			w := vars[int(b)%len(vars)]
			c1 := int64(a%7) - 3
			c2 := int64(b%7) - 3
			e := Term(v, c1).Add(Term(w, c2))
			switch op % 5 {
			case 0: // add a >= constraint shifted to keep the witness inside
				val, err := e.Eval(pt)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				s.AddGE(e.AddConst(-val + int64(op%3)))
				check("AddGE")
			case 1: // add an equality the witness satisfies
				val, err := e.Eval(pt)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				s.AddEq(e.AddConst(-val))
				check("AddEq")
			case 2: // intersect with self must change nothing
				s = s.Intersect(s.Clone())
				check("Intersect(self)")
			case 3: // substitution commutes with evaluation at the witness
				if v == w {
					continue
				}
				k := int64(op % 4)
				sub := s.Clone().Substitute(v, Var(w).AddConst(k))
				moved := map[string]int64{}
				for name, val := range pt {
					moved[name] = val
				}
				moved[v] = pt[w] + k
				if sub.ContainsPoint(pt) != s.ContainsPoint(moved) {
					t.Fatalf("Substitute(%s := %s + %d) changed satisfaction: %s vs %s", v, w, k, sub, s)
				}
			case 4: // eliminating a variable is sound for the witness
				proj := s.Clone().Eliminate(v)
				if !proj.ContainsPoint(pt) {
					t.Fatalf("Eliminate(%s): witness not in projection %s of %s", v, proj, s)
				}
			}
			_ = s.String() // must never panic
		}
	})
}
