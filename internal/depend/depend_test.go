package depend

import (
	"testing"

	"suifx/internal/ir"
	"suifx/internal/minif"
	"suifx/internal/region"
	"suifx/internal/summary"
)

func loopResult(t *testing.T, src, loopID string, opts Options) (*summary.Analysis, *LoopResult) {
	t.Helper()
	prog, err := minif.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	a := summary.Analyze(prog)
	var lr *region.Region
	for _, r := range a.Reg.LoopRegions() {
		if r.ID() == loopID {
			lr = r
		}
	}
	if lr == nil {
		t.Fatalf("no loop %s", loopID)
	}
	return a, AnalyzeLoop(a, lr, opts)
}

func classOf(t *testing.T, res *LoopResult, name string) VarResult {
	t.Helper()
	for _, v := range res.Vars {
		if v.Sym.Name == name {
			return v
		}
	}
	t.Fatalf("no var %s in result", name)
	return VarResult{}
}

func TestIndependentLoop(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100), b(100)
      INTEGER i
      DO 10 i = 1, 100
        a(i) = b(i) * 2.0
10    CONTINUE
      END
`, "MAIN/10", Options{})
	if !res.Parallelizable {
		t.Fatalf("loop should parallelize: blocking=%v", res.Blocking)
	}
	if c := classOf(t, res, "A").Class; c != ClassParallel {
		t.Fatalf("A = %v, want parallel", c)
	}
	if c := classOf(t, res, "B").Class; c != ClassReadOnly {
		t.Fatalf("B = %v, want read-only", c)
	}
}

func TestFlowDependence(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100)
      INTEGER i
      DO 10 i = 2, 100
        a(i) = a(i-1) + 1.0
10    CONTINUE
      END
`, "MAIN/10", Options{})
	if res.Parallelizable {
		t.Fatal("recurrence must not parallelize")
	}
	if c := classOf(t, res, "A").Class; c != ClassDep {
		t.Fatalf("A = %v, want dependence", c)
	}
}

func TestAntiDependenceBlocks(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100)
      INTEGER i
      DO 10 i = 1, 99
        a(i) = a(i+1) + 1.0
10    CONTINUE
      END
`, "MAIN/10", Options{})
	if res.Parallelizable {
		t.Fatal("anti-dependence must not parallelize statically")
	}
}

func TestScalarPrivatization(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100), t
      INTEGER i
      DO 10 i = 1, 100
        t = a(i) * 2.0
        a(i) = t + 1.0
10    CONTINUE
      END
`, "MAIN/10", Options{})
	if !res.Parallelizable {
		t.Fatalf("loop with privatizable scalar should parallelize: %v", res.Blocking)
	}
	v := classOf(t, res, "T")
	if v.Class != ClassPrivate || !v.NeedsFinalization {
		t.Fatalf("T = %+v, want private w/ finalization", v)
	}
}

func TestArrayPrivatizationIdenticalRegion(t *testing.T) {
	// Every iteration writes tmp(1:5) before reading it: private.
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100), tmp(5)
      INTEGER i, j
      DO 10 i = 1, 100
        DO 5 j = 1, 5
          tmp(j) = a(i) + j
5       CONTINUE
        a(i) = tmp(1) + tmp(5)
10    CONTINUE
      END
`, "MAIN/10", Options{})
	if !res.Parallelizable {
		t.Fatalf("loop should parallelize via privatization: %v", res.Blocking)
	}
	v := classOf(t, res, "TMP")
	if v.Class != ClassPrivate {
		t.Fatalf("TMP = %+v, want private", v)
	}
}

func TestLoopVariantPrivateNeedsLiveness(t *testing.T) {
	// Fig 5-1: each iteration writes a different range of aif3; without
	// liveness it cannot be privatized, with the oracle it can.
	src := `
      SUBROUTINE init(q, n)
      REAL q(100)
      INTEGER j, n
      DO 10 j = 1, n
        q(j) = 0.0
10    CONTINUE
      END
      PROGRAM main
      REAL aif3(100), s(100)
      INTEGER l, k, k1, k2, klo(10), khi(10)
      DO 85 l = 2, 9
        k1 = klo(l)
        k2 = khi(l)
        CALL init(aif3(k1), k2-k1+1)
        DO 60 k = k1, k2
          s(l) = s(l) + aif3(k)
60      CONTINUE
85    CONTINUE
      END
`
	_, res := loopResult(t, src, "MAIN/85", Options{})
	if res.Parallelizable {
		t.Fatal("without liveness the loop must stay sequential")
	}
	if c := classOf(t, res, "AIF3").Class; c != ClassDep {
		t.Fatalf("AIF3 = %v, want dependence without liveness", c)
	}
	_, res2 := loopResult(t, src, "MAIN/85", Options{
		DeadAtExit: func(*region.Region, *ir.Symbol) bool { return true },
	})
	if !res2.Parallelizable {
		t.Fatalf("with the liveness oracle the loop should parallelize: %v", res2.Blocking)
	}
	if c := classOf(t, res2, "AIF3").Class; c != ClassPrivate {
		t.Fatalf("AIF3 = %v, want private with liveness", c)
	}
}

func TestScalarReduction(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100), s
      INTEGER i
      s = 0.0
      DO 10 i = 1, 100
        s = s + a(i)
10    CONTINUE
      END
`, "MAIN/10", Options{UseReductions: true})
	if !res.Parallelizable || !res.NeedsReduction {
		t.Fatalf("sum should parallelize via reduction: %v", res.Blocking)
	}
	v := classOf(t, res, "S")
	if v.Class != ClassReduction || v.RedOp != summary.RedAdd {
		t.Fatalf("S = %+v", v)
	}
	// Without reduction recognition the same loop is sequential.
	_, res2 := loopResult(t, `
      PROGRAM main
      REAL a(100), s
      INTEGER i
      s = 0.0
      DO 10 i = 1, 100
        s = s + a(i)
10    CONTINUE
      END
`, "MAIN/10", Options{UseReductions: false})
	if res2.Parallelizable {
		t.Fatal("without reduction recognition the sum loop must be sequential")
	}
}

func TestArrayRegionReduction(t *testing.T) {
	// §6.1.2: B(J) accumulated across the outer loop.
	_, res := loopResult(t, `
      PROGRAM main
      REAL b(3), a(100,3)
      INTEGER i, j
      DO 10 i = 1, 100
        DO 5 j = 1, 3
          b(j) = b(j) + a(i,j)
5       CONTINUE
10    CONTINUE
      END
`, "MAIN/10", Options{UseReductions: true})
	if !res.Parallelizable || !res.NeedsReduction {
		t.Fatalf("array reduction loop should parallelize: %v", res.Blocking)
	}
	v := classOf(t, res, "B")
	if v.Class != ClassReduction {
		t.Fatalf("B = %+v", v)
	}
}

func TestSparseReduction(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL hist(50)
      INTEGER ind(100), i
      DO 10 i = 1, 100
        hist(ind(i)) = hist(ind(i)) + 1.0
10    CONTINUE
      END
`, "MAIN/10", Options{UseReductions: true})
	if !res.Parallelizable {
		t.Fatalf("sparse reduction should parallelize: %v", res.Blocking)
	}
	v := classOf(t, res, "HIST")
	if v.Class != ClassReduction || v.RedOp != summary.RedAdd {
		t.Fatalf("HIST = %+v", v)
	}
}

func TestReductionBlockedByPlainRead(t *testing.T) {
	// Reading the accumulator elsewhere in the loop defeats the reduction.
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100), s
      INTEGER i
      s = 0.0
      DO 10 i = 1, 100
        s = s + a(i)
        a(i) = s
10    CONTINUE
      END
`, "MAIN/10", Options{UseReductions: true})
	if res.Parallelizable {
		t.Fatal("partial-sums loop must not parallelize as a reduction")
	}
}

func TestMinReduction(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100), tmin
      INTEGER i
      tmin = 1E30
      DO 10 i = 1, 100
        IF (a(i) .LT. tmin) tmin = a(i)
10    CONTINUE
      END
`, "MAIN/10", Options{UseReductions: true})
	if !res.Parallelizable {
		t.Fatalf("MIN loop should parallelize: %v", res.Blocking)
	}
	v := classOf(t, res, "TMIN")
	if v.Class != ClassReduction || v.RedOp != summary.RedMin {
		t.Fatalf("TMIN = %+v", v)
	}
}

func TestIOBlocksParallelization(t *testing.T) {
	_, res := loopResult(t, `
      PROGRAM main
      REAL a(100)
      INTEGER i
      DO 10 i = 1, 100
        a(i) = 1.0
        WRITE(*,*) a(i)
10    CONTINUE
      END
`, "MAIN/10", Options{})
	if res.Parallelizable || !res.HasIO {
		t.Fatal("loop with I/O must not parallelize")
	}
}

func TestUserAssertionPrivate(t *testing.T) {
	src := `
      PROGRAM main
      REAL xps(100), y(101), xp(200)
      INTEGER s, h, kc
      DO 2365 s = 1, 99
        kc = s - (s/2)*2
        IF (kc .EQ. 0) THEN
          DO 2350 h = 1, 50
            xps(h) = y(h+1)
2350      CONTINUE
        ENDIF
        DO 2360 h = 1, 50
          xp(s+h) = xps(h)
2360    CONTINUE
2365  CONTINUE
      END
`
	_, res := loopResult(t, src, "MAIN/2365", Options{})
	if res.Parallelizable {
		t.Fatal("conditionally-written xps must block")
	}
	if c := classOf(t, res, "XPS").Class; c != ClassDep {
		t.Fatalf("XPS = %v, want dependence", c)
	}
	_, res2 := loopResult(t, src, "MAIN/2365", Options{
		AssertPrivate: map[string]bool{"XPS": true},
	})
	v := classOf(t, res2, "XPS")
	if v.Class != ClassPrivate || !v.ByAssertion {
		t.Fatalf("asserted XPS = %+v", v)
	}
}

func TestCommonAliasDifferentShapes(t *testing.T) {
	_, res := loopResult(t, `
      SUBROUTINE wr
      COMMON /blk/ v1(0:10)
      INTEGER i
      DO 5 i = 0, 10
        v1(i) = 1.0
5     CONTINUE
      END
      PROGRAM main
      COMMON /blk/ v(11)
      REAL s
      INTEGER i
      DO 10 i = 1, 11
        CALL wr
        s = v(i)
10    CONTINUE
      END
`, "MAIN/10", Options{})
	if res.Parallelizable {
		t.Fatal("aliased common layouts must block parallelization")
	}
}
