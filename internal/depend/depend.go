// Package depend implements the per-loop dependence analysis and variable
// classification of §2.4: for every variable touched by a loop it decides
// whether the accesses are independent across iterations (parallel),
// privatizable, a reduction, or a genuine loop-carried dependence — driving
// the parallelizer's outermost-loop decisions.
package depend

import (
	"sort"

	"suifx/internal/ir"
	"suifx/internal/lin"
	"suifx/internal/region"
	"suifx/internal/summary"
	"suifx/internal/symbolic"
)

// Class is a variable's classification with respect to one loop.
type Class int

const (
	// ClassIndex is the DO index (an induction variable, always fine).
	ClassIndex Class = iota
	// ClassReadOnly variables are never written in the loop.
	ClassReadOnly
	// ClassParallel variables have no loop-carried access conflicts.
	ClassParallel
	// ClassPrivate variables can be privatized (no upwards-exposed reads).
	ClassPrivate
	// ClassReduction variables are updated only commutatively.
	ClassReduction
	// ClassDep variables carry an unresolved loop-carried dependence.
	ClassDep
)

func (c Class) String() string {
	switch c {
	case ClassIndex:
		return "index"
	case ClassReadOnly:
		return "read-only"
	case ClassParallel:
		return "parallel"
	case ClassPrivate:
		return "private"
	case ClassReduction:
		return "reduction"
	default:
		return "dependence"
	}
}

// VarResult is the classification of one variable for one loop.
type VarResult struct {
	Sym   *ir.Symbol
	Class Class
	// RedOp is the reduction operator for ClassReduction.
	RedOp string
	// RedRegion is the loop-level reduction region (for runtime
	// initialization/finalization sizing, §6.3.3).
	RedRegion *lin.Section
	// NeedsFinalization marks privatized variables that are (or may be)
	// live at loop exit and whose final value must be written back.
	NeedsFinalization bool
	// ByAssertion marks classifications forced by a user assertion.
	ByAssertion bool
	// Reason explains a ClassDep verdict.
	Reason string
}

// Options control classification.
type Options struct {
	// UseReductions enables reduction recognition (the Chapter 6 ablation
	// switch: Fig 6-4..6-7 compare without/with).
	UseReductions bool
	// DeadAtExit, when non-nil, is the array liveness oracle (Chapter 5):
	// it reports that no element of sym written by loop r is read after r.
	DeadAtExit func(r *region.Region, sym *ir.Symbol) bool
	// AssertPrivate and AssertIndependent carry user assertions from the
	// Explorer (§2.8); keys are canonical symbol names.
	AssertPrivate     map[string]bool
	AssertIndependent map[string]bool
}

// LoopResult is the dependence verdict for one loop.
type LoopResult struct {
	Region *region.Region
	// Parallelizable is true when every variable is resolved and the loop
	// has no I/O.
	Parallelizable bool
	// NeedsReduction is true when parallelization requires the reduction
	// transformation for at least one variable.
	NeedsReduction bool
	HasIO          bool
	Vars           []VarResult
	// Blocking lists the unresolved variables (ClassDep).
	Blocking []VarResult
}

// AnalyzeLoop classifies every variable of the loop and decides
// parallelizability.
func AnalyzeLoop(a *summary.Analysis, r *region.Region, opts Options) *LoopResult {
	body := r.Body()
	bt := a.BodySum[body]
	lc := a.Ctx[r]
	res := &LoopResult{Region: r, HasIO: ir.HasIO(r.Loop.Body)}

	syms := bt.SortedSyms()
	for _, sym := range syms {
		acc := bt.Arrays[sym]
		vr := classify(a, r, sym, acc, lc.IndexVar, lc.Variant, opts)
		res.Vars = append(res.Vars, vr)
		if vr.Class == ClassDep {
			res.Blocking = append(res.Blocking, vr)
		}
		if vr.Class == ClassReduction {
			res.NeedsReduction = true
		}
	}
	// Aliased common-block keys with different layouts: conservative.
	for i, x := range syms {
		for _, y := range syms[i+1:] {
			if x == y || !summary.Overlaps(x, y) {
				continue
			}
			ax, ay := bt.Arrays[x], bt.Arrays[y]
			if ax.Writes().IsEmpty() && ay.Writes().IsEmpty() {
				continue
			}
			vr := VarResult{Sym: x, Class: ClassDep,
				Reason: "aliased with " + y.Name + " through common /" + x.Common + "/ with a different layout"}
			res.Vars = append(res.Vars, vr)
			res.Blocking = append(res.Blocking, vr)
		}
	}
	sort.SliceStable(res.Blocking, func(i, j int) bool { return res.Blocking[i].Sym.Name < res.Blocking[j].Sym.Name })
	res.Parallelizable = !res.HasIO && len(res.Blocking) == 0
	return res
}

func classify(a *summary.Analysis, r *region.Region, sym *ir.Symbol, acc *summary.Access, idx string, variant []string, opts Options) VarResult {
	vr := VarResult{Sym: sym}
	if sym == r.Loop.Index {
		vr.Class = ClassIndex
		return vr
	}
	writes := acc.Writes()
	if writes.IsEmpty() {
		vr.Class = ClassReadOnly
		return vr
	}
	if opts.AssertIndependent[sym.Name] {
		vr.Class = ClassParallel
		vr.ByAssertion = true
		return vr
	}
	// No loop-carried conflict between writes and any access?
	if !CrossIterConflict(writes, acc.R.Union(writes), idx) {
		vr.Class = ClassParallel
		return vr
	}
	// Privatizable? No upwards-exposed reads per iteration, and the final
	// values can be handled: either every iteration writes the identical
	// region (last iteration finalizes, §5.4's base rule), or liveness shows
	// the variable dead at exit (the Chapter 5 enhancement).
	if acc.E.IsEmpty() {
		if sectionIdxFree(acc.M, idx, variant) && acc.W.IsEmpty() {
			vr.Class = ClassPrivate
			vr.NeedsFinalization = true
			return vr
		}
		if opts.DeadAtExit != nil && opts.DeadAtExit(r, sym) {
			vr.Class = ClassPrivate
			return vr
		}
	}
	if opts.AssertPrivate[sym.Name] {
		vr.Class = ClassPrivate
		vr.ByAssertion = true
		return vr
	}
	// Reduction? All conflicting accesses must be commutative updates of a
	// single operator (§6.2.2.1 criteria).
	if opts.UseReductions {
		if op, region, ok := reductionOK(acc, idx); ok {
			vr.Class = ClassReduction
			vr.RedOp = op
			vr.RedRegion = region
			return vr
		}
	}
	vr.Class = ClassDep
	vr.Reason = depReason(acc, idx)
	return vr
}

// CrossIterConflict reports whether section A in one iteration may touch
// section B in a different iteration (idx is the loop index variable). Both
// directions are tested.
func CrossIterConflict(a, b *lin.Section, idx string) bool {
	return conflictDir(a, b, idx) || conflictDir(b, a, idx)
}

// conflictDir tests ∃ i1 < i2 with a(i1) ∩ b(i2) ≠ ∅. Loop-variant unknowns
// ("%" names) take different values in different iterations, so they are
// renamed in the second copy along with the index (conservatively including
// unknowns minted in outer loops).
func conflictDir(a, b *lin.Section, idx string) bool {
	other := "$iter2$" + idx
	for _, p := range a.Polys {
		for _, q := range b.Polys {
			q2 := q.Rename(idx, other)
			for _, v := range q2.Vars() {
				if symbolic.IsVariantVar(v) {
					q2 = q2.Rename(v, "$iter2$"+v)
				}
			}
			sys := p.Intersect(q2)
			sys.AddGE(lin.Var(other).Sub(lin.Var(idx)).AddConst(-1)) // i2 >= i1+1
			if !sys.IsEmpty() {
				return true
			}
		}
	}
	return false
}

// sectionIdxFree reports whether every iteration writes the identical
// region: the loop index must not be coupled — directly or transitively
// through shared constraints — to any dimension variable, and no polyhedron
// may reference a loop-variant unknown minted in this loop's body (its value
// differs between iterations). Pure bound constraints on the index alone do
// not make the region iteration-variant.
func sectionIdxFree(s *lin.Section, idx string, variant []string) bool {
	vset := map[string]bool{}
	for _, v := range variant {
		vset[v] = true
	}
	for _, p := range s.Polys {
		for _, v := range p.Vars() {
			if vset[v] {
				return false
			}
		}
		// Union-find over variables co-occurring in a constraint.
		parent := map[string]string{}
		var find func(v string) string
		find = func(v string) string {
			if parent[v] == "" || parent[v] == v {
				parent[v] = v
				return v
			}
			r := find(parent[v])
			parent[v] = r
			return r
		}
		union := func(a, b string) { parent[find(a)] = find(b) }
		for _, c := range p.Cons {
			vars := c.E.Vars()
			for i := 1; i < len(vars); i++ {
				union(vars[0], vars[i])
			}
		}
		if !hasVar(p, idx) {
			continue
		}
		idxRoot := find(idx)
		for _, v := range p.Vars() {
			if lin.IsDimVar(v) && find(v) == idxRoot {
				return false
			}
		}
	}
	return true
}

func hasVar(p *lin.System, v string) bool {
	for _, x := range p.Vars() {
		if x == v {
			return true
		}
	}
	return false
}

// reductionOK checks §6.2.2.1: every loop-carried conflict involves only
// commutative updates of one operator type.
func reductionOK(acc *summary.Access, idx string) (op string, region *lin.Section, ok bool) {
	var ops []string
	for o, s := range acc.Red {
		if !s.IsEmpty() {
			ops = append(ops, o)
		}
	}
	if len(ops) == 0 {
		return "", nil, false
	}
	sort.Strings(ops)
	// Regions of different operators must not conflict with each other.
	for i, o1 := range ops {
		for _, o2 := range ops[i+1:] {
			if CrossIterConflict(acc.Red[o1], acc.Red[o2], idx) {
				return "", nil, false
			}
		}
	}
	// Plain accesses must not conflict with anything (writes with all, reads
	// with reduction writes).
	all := acc.R.Union(acc.Writes())
	if CrossIterConflict(acc.PlainW, all, idx) {
		return "", nil, false
	}
	for _, o := range ops {
		if CrossIterConflict(acc.Red[o], acc.Plain, idx) {
			return "", nil, false
		}
	}
	// A single operator region covers the conflicts; when several disjoint
	// operator regions exist we report the dominant one (the runtime
	// transforms each region independently).
	region = lin.EmptySection(len(acc.Sym.Dims))
	for _, o := range ops {
		region = region.Union(acc.Red[o].Project(idx))
	}
	return ops[0], region, true
}

func depReason(acc *summary.Access, idx string) string {
	if !acc.E.IsEmpty() {
		return "value may flow between iterations (upwards-exposed read " + acc.E.String() + ")"
	}
	if !acc.W.IsEmpty() {
		return "conditionally or irregularly written; cannot prove private (may-write " + acc.W.String() + ")"
	}
	return "loop-variant write region; final values cannot be determined"
}
