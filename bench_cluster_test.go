// Cluster batch fan-out benchmarks, committed as BENCH_cluster.json (see
// EXPERIMENTS.md). Each sub-benchmark runs a real coordinator over N real
// in-process workers and streams the same 16-program corpus manifest through
// POST /v1/batch. Alongside wall time, every run reports the deterministic
// virtual makespan — the max over ring shards of the summed source lines the
// ring assigns that shard — on a canonical-name ring, so the 1w→2w scaling
// curve is reproducible on a single-core runner where wall-clock parallel
// speedup is physically impossible (same convention as vt_speedup in
// BENCH_parallel.json). benchjson derives batch_scaleup_2w from the 1w and
// 2w makespans.
package suifx_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"suifx/internal/cluster"
	"suifx/internal/corpus"
	"suifx/internal/driver"
	"suifx/internal/server"
)

// benchBatchItems is the benchmark manifest: 16 factory programs of ~600
// lines each (seeds 9000..9015), small enough that a -benchtime=1x run
// stays in CI budget and numerous enough that the ring splits them evenly.
func benchBatchItems() []corpus.BatchItem {
	cfg := corpus.Config{
		TargetLines: 600, CallDepth: 2, CallFanout: 2, LoopDepth: 2,
		AliasDensity: 0.2, ReductionMix: 0.3, TripLo: 2, TripHi: 10,
	}
	items := make([]corpus.BatchItem, 16)
	for i := range items {
		c := cfg
		items[i] = corpus.BatchItem{Seed: 9000 + int64(i), Config: &c}
	}
	return items
}

// virtualMakespan models the coordinator's shard assignment on a ring of n
// canonical member names and charges each item its source-line count: the
// returned makespan is the busiest shard's total, the unit the batch
// scale-up is stated in. Canonical names (not live worker ports) keep the
// metric byte-stable across runs.
func virtualMakespan(b *testing.B, items []corpus.BatchItem, n int) (makespan, total float64) {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("worker-%d", i+1)
	}
	ring := cluster.BuildRing(members, 0, 1)
	load := map[string]float64{}
	for _, it := range items {
		_, src, err := it.Resolve()
		if err != nil {
			b.Fatal(err)
		}
		p := corpus.Generate(it.Seed, *it.Config)
		lines := float64(p.Manifest.Stats.Lines)
		load[ring.Owner(cluster.ProgramKey("", src))] += lines
		total += lines
	}
	for _, v := range load {
		if v > makespan {
			makespan = v
		}
	}
	return makespan, total
}

// BenchmarkClusterBatch streams the manifest through a coordinator fronting
// 1 and 2 workers. Sub-benchmark names avoid a trailing -N so benchjson's
// procs-suffix stripping can't eat the worker count.
func BenchmarkClusterBatch(b *testing.B) {
	items := benchBatchItems()
	body, err := json.Marshal(server.BatchRequest{Items: items})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("%dw", n), func(b *testing.B) {
			urls := make([]string, n)
			for i := range urls {
				srv := server.New(server.Config{Cache: driver.NewCache()})
				defer srv.Close()
				ts := httptest.NewServer(srv.Handler())
				defer ts.Close()
				urls[i] = ts.URL
			}
			co, err := cluster.New(cluster.Config{Workers: urls, HedgeDelay: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer co.Close()
			cts := httptest.NewServer(co.Handler())
			defer cts.Close()

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(cts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
				if err != nil {
					b.Fatal(err)
				}
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
				var last string
				records := 0
				for sc.Scan() {
					if len(bytes.TrimSpace(sc.Bytes())) == 0 {
						continue
					}
					records++
					last = sc.Text()
				}
				resp.Body.Close()
				if err := sc.Err(); err != nil {
					b.Fatal(err)
				}
				var sum server.BatchSummary
				if err := json.Unmarshal([]byte(last), &sum); err != nil {
					b.Fatalf("trailer: %v (%q)", err, last)
				}
				if records != len(items)+1 || !sum.Done || sum.OK != len(items) {
					b.Fatalf("batch run: %d records, trailer %+v", records, sum)
				}
			}
			b.StopTimer()

			makespan, total := virtualMakespan(b, items, n)
			b.ReportMetric(float64(len(items)), "batch_items")
			b.ReportMetric(makespan/1000, "vmakespan_klines")
			b.ReportMetric(total/makespan, "vt_scaleup")
		})
	}
}
