// Package suifx's root benchmark harness: one benchmark per reproduced
// paper table/figure (each regenerates the table from scratch — parse,
// analyze, profile, model) plus ablation benchmarks for the design choices
// DESIGN.md calls out. Key reproduced values are attached as custom metrics
// so `go test -bench` output doubles as an experiment record.
package suifx_test

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/experiments"
	"suifx/internal/ir"
	"suifx/internal/issa"
	"suifx/internal/liveness"
	"suifx/internal/machine"
	"suifx/internal/minif"
	"suifx/internal/slice"
	"suifx/internal/summary"
	"suifx/internal/workloads"
)

func benchTable(b *testing.B, gen func() *experiments.Table) *experiments.Table {
	b.Helper()
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = gen()
	}
	return t
}

func metric(b *testing.B, t *experiments.Table, row, col int, name string) {
	b.Helper()
	s := t.Rows[row][col]
	s = strings.TrimSuffix(strings.TrimSuffix(s, " ms"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		// A silently-skipped metric would let a renamed column or reshaped
		// table rot the benchmark record without anyone noticing.
		b.Fatalf("metric %s: cell [%d][%d] of %s = %q is not numeric: %v", name, row, col, t.ID, s, err)
	}
	b.ReportMetric(v, name)
}

// ---- Chapter 4 ----

func BenchmarkFig4_1(b *testing.B) {
	t := benchTable(b, experiments.Fig4_1)
	metric(b, t, 0, 4, "mdg_auto_coverage_%")
	metric(b, t, 0, 6, "mdg_auto_speedup8")
}

func BenchmarkFig4_7(b *testing.B) {
	t := benchTable(b, experiments.Fig4_7)
	if v, err := strconv.Atoi(t.Rows[4][5]); err == nil {
		b.ReportMetric(float64(v), "user_parallelized_loops")
	}
}

func BenchmarkFig4_8(b *testing.B) {
	t := benchTable(b, experiments.Fig4_8)
	last := t.Rows[len(t.Rows)-1]
	if v, err := strconv.ParseFloat(strings.TrimSuffix(last[5], "%"), 64); err == nil {
		b.ReportMetric(v, "avg_prog_slice_AR_%")
	}
}

func BenchmarkFig4_9(b *testing.B) { benchTable(b, experiments.Fig4_9) }
func BenchmarkFig4_10(b *testing.B) {
	t := benchTable(b, experiments.Fig4_10)
	metric(b, t, 1, 5, "mdg_user_speedup8")
}

// ---- Chapter 5 ----

func BenchmarkFig5_5(b *testing.B) { benchTable(b, experiments.Fig5_5) }
func BenchmarkFig5_6(b *testing.B) { benchTable(b, experiments.Fig5_6) }
func BenchmarkFig5_7(b *testing.B) {
	t := benchTable(b, experiments.Fig5_7)
	metric(b, t, 0, 5, "hydro_dead_full_%")
}
func BenchmarkFig5_8(b *testing.B)  { benchTable(b, experiments.Fig5_8) }
func BenchmarkFig5_10(b *testing.B) { benchTable(b, experiments.Fig5_10) }
func BenchmarkFig5_12(b *testing.B) {
	t := benchTable(b, experiments.Fig5_12)
	last := t.Rows[len(t.Rows)-1]
	metric(b, t, len(t.Rows)-1, 1, "flo88_32p_without")
	_ = last
	metric(b, t, len(t.Rows)-1, 2, "flo88_32p_with_contraction")
}

// ---- Chapter 6 ----

func BenchmarkFig6_1(b *testing.B) { benchTable(b, experiments.Fig6_1) }
func BenchmarkFig6_2(b *testing.B) { benchTable(b, experiments.Fig6_2) }
func BenchmarkFig6_3(b *testing.B) { benchTable(b, experiments.Fig6_3) }
func BenchmarkFig6_4(b *testing.B) { benchTable(b, experiments.Fig6_4) }
func BenchmarkFig6_5(b *testing.B) { benchTable(b, experiments.Fig6_5) }
func BenchmarkFig6_6(b *testing.B) {
	t := benchTable(b, experiments.Fig6_6)
	metric(b, t, 0, 2, "su2cor_speedup_with_red")
}
func BenchmarkFig6_7(b *testing.B) { benchTable(b, experiments.Fig6_7) }

// ---- Component benchmarks ----

// BenchmarkAnalyzeHydro measures the full interprocedural analysis pipeline
// on the largest ch4 application.
func BenchmarkAnalyzeHydro(b *testing.B) {
	w := workloads.ByName("hydro")
	for i := 0; i < b.N; i++ {
		sum := summary.Analyze(w.Fresh())
		liveness.Analyze(sum, liveness.Full)
	}
}

// seqBaseline measures the per-run cost of fn outside the benchmark timer,
// for speedup-vs-sequential metrics.
func seqBaseline(fn func()) time.Duration {
	const reps = 3
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(start) / reps
}

// reportSpeedup attaches the speedup of the timed loop over the sequential
// baseline. On a single-CPU runner this hovers around 1.0; the ≥1.5×
// targets apply to multi-core runners.
func reportSpeedup(b *testing.B, seq time.Duration) {
	b.Helper()
	par := float64(b.Elapsed()) / float64(b.N)
	if par > 0 {
		b.ReportMetric(float64(seq)/par, "speedup_vs_sequential")
	}
}

// BenchmarkAnalyzeHydroParallel measures the concurrent driver against the
// sequential analyzer on the deepest single call graph (intra-program SCC
// parallelism).
func BenchmarkAnalyzeHydroParallel(b *testing.B) {
	w := workloads.ByName("hydro")
	seq := seqBaseline(func() {
		sum := summary.Analyze(w.Fresh())
		liveness.Analyze(sum, liveness.Full)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := driver.Analyze(w.Fresh(), driver.Options{})
		liveness.Analyze(sum, liveness.Full)
	}
	b.StopTimer()
	reportSpeedup(b, seq)
}

// BenchmarkAnalyzeSuiteParallel measures cross-workload fan-out: all
// benchmark applications analyzed at once on a bounded pool, the way the
// experiment driver regenerates tables, vs one-at-a-time sequentially.
func BenchmarkAnalyzeSuiteParallel(b *testing.B) {
	ws := workloads.All()
	seq := seqBaseline(func() {
		for _, w := range ws {
			summary.Analyze(w.Fresh())
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for _, w := range ws {
			wg.Add(1)
			go func(w *workloads.Workload) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				driver.Analyze(w.Fresh(), driver.Options{})
			}(w)
		}
		wg.Wait()
	}
	b.StopTimer()
	reportSpeedup(b, seq)
}

// BenchmarkAnalyzeSuiteCached measures the summary cache: repeated requests
// for already-analyzed workloads (the table-regeneration hot path) against
// re-deriving every analysis from source.
func BenchmarkAnalyzeSuiteCached(b *testing.B) {
	ws := workloads.All()
	seq := seqBaseline(func() {
		for _, w := range ws {
			summary.Analyze(w.Fresh())
		}
	})
	cache := driver.NewCache()
	for _, w := range ws { // warm
		cache.MustAnalyze(w.Name, w.Source, driver.Options{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			cache.MustAnalyze(w.Name, w.Source, driver.Options{})
		}
	}
	b.StopTimer()
	reportSpeedup(b, seq)
}

// BenchmarkInterpretMdg measures the interpreter on a profiled workload,
// including a fresh parse and lowering per iteration (cold-start cost).
func BenchmarkInterpretMdg(b *testing.B) {
	w := workloads.ByName("mdg")
	for i := 0; i < b.N; i++ {
		in := exec.New(w.Fresh())
		if err := in.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Execution engines (BENCH_exec.json) ----

// benchEngine measures one engine's steady-state execution: the program is
// parsed (and, for the bytecode engine, lowered) once, then each iteration
// creates a fresh interpreter and runs it end to end. instrumented attaches
// the profiler and the dynamic dependence analyzer, the configuration the
// compile-then-run redesign targets.
func benchEngine(b *testing.B, mode exec.ExecMode, instrumented bool, sampleEvery int64) {
	prog := workloads.ByName("mdg").Program()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := exec.New(prog)
		in.Mode = mode
		if instrumented {
			exec.NewProfiler(in)
			d := exec.NewDynDep(in)
			d.SampleEvery = sampleEvery
			if sampleEvery > 1 {
				d.SampleWarm = 2
			}
		}
		if err := in.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpTreeDDA(b *testing.B)       { benchEngine(b, exec.ModeTree, true, 0) }
func BenchmarkInterpBytecodeDDA(b *testing.B)   { benchEngine(b, exec.ModeBytecode, true, 0) }
func BenchmarkInterpTieredDDA(b *testing.B)     { benchEngine(b, exec.ModeTiered, true, 0) }
func BenchmarkInterpRegisterDDA(b *testing.B)   { benchEngine(b, exec.ModeRegister, true, 0) }
func BenchmarkInterpTreePlain(b *testing.B)     { benchEngine(b, exec.ModeTree, false, 0) }
func BenchmarkInterpBytecodePlain(b *testing.B) { benchEngine(b, exec.ModeBytecode, false, 0) }
func BenchmarkInterpTieredPlain(b *testing.B)   { benchEngine(b, exec.ModeTiered, false, 0) }
func BenchmarkInterpRegisterPlain(b *testing.B) { benchEngine(b, exec.ModeRegister, false, 0) }

// The §2.5.2 iteration-sampled DDA configuration (SampleEvery=10, two warm
// iterations): the production setting for long-running instrumented runs,
// and the one where the specializing tier's instrumentation strip applies —
// unsampled iterations dispatch the checkless alt body instead of paying
// per-access analyzer callbacks.
func BenchmarkInterpTreeSampledDDA(b *testing.B)     { benchEngine(b, exec.ModeTree, true, 10) }
func BenchmarkInterpBytecodeSampledDDA(b *testing.B) { benchEngine(b, exec.ModeBytecode, true, 10) }
func BenchmarkInterpTieredSampledDDA(b *testing.B)   { benchEngine(b, exec.ModeTiered, true, 10) }
func BenchmarkInterpRegisterSampledDDA(b *testing.B) { benchEngine(b, exec.ModeRegister, true, 10) }

// ---- Ablations (DESIGN.md) ----

// BenchmarkAblationSliceSummaries compares memoized hierarchical slicing
// against a fresh slicer per query (no cross-query summary reuse).
func BenchmarkAblationSliceSummaries(b *testing.B) {
	prog := workloads.ByName("hydro").Fresh()
	g := issa.Build(prog)
	queries := [][3]interface{}{}
	for _, n := range g.Nodes {
		if n.Kind == issa.KDef && len(queries) < 24 {
			queries = append(queries, [3]interface{}{n.Proc, n.Sym.Name, n.Line})
		}
	}
	b.Run("shared-summaries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := slice.New(g, slice.Config{Kind: slice.Program})
			for _, q := range queries {
				s.OfUse(q[0].(string), q[1].(string), q[2].(int))
			}
		}
	})
	b.Run("fresh-per-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range queries {
				s := slice.New(g, slice.Config{Kind: slice.Program})
				s.OfUse(q[0].(string), q[1].(string), q[2].(int))
			}
		}
	})
}

// BenchmarkAblationReductionFinalize compares the §6.3 finalization
// strategies with real goroutines on the histogram kernel.
func BenchmarkAblationReductionFinalize(b *testing.B) {
	const src = `
      PROGRAM hist
      REAL h(4096)
      INTEGER ind(20000), i
      DO 5 i = 1, 20000
        ind(i) = MOD(i * 37, 4096) + 1
5     CONTINUE
      DO 10 i = 1, 20000
        h(ind(i)) = h(ind(i)) + 1.0
10    CONTINUE
      END
`
	for _, cfg := range []struct {
		name      string
		staggered bool
		chunks    int
	}{
		{"serialized", false, 0},
		{"staggered-8", true, 8},
		{"staggered-64", true, 64},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				prog := minif.MustParse("hist", src)
				main := prog.Main()
				l10 := main.Loops()[1]
				plan := &exec.ParallelPlan{
					Workers: 8,
					Loops: map[*ir.DoLoop]*exec.LoopPlan{
						l10: {
							Reductions: []exec.ReductionPlan{{Sym: main.Lookup("H"), Op: "+"}},
							Staggered:  cfg.staggered, Chunks: cfg.chunks,
						},
					},
				}
				in := exec.NewWithPlan(prog, plan)
				if err := in.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDynDep compares full dynamic-dependence instrumentation
// against the §2.5.2 iteration-sampling optimization.
func BenchmarkAblationDynDep(b *testing.B) {
	w := workloads.ByName("mdg")
	for _, cfg := range []struct {
		name   string
		sample int64
	}{{"full", 0}, {"sample-10", 10}, {"sample-100", 100}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var accesses int64
			for i := 0; i < b.N; i++ {
				in := exec.New(w.Fresh())
				d := exec.NewDynDep(in)
				d.SampleEvery = cfg.sample
				if err := in.Run(); err != nil {
					b.Fatal(err)
				}
				accesses = d.Accesses()
			}
			b.ReportMetric(float64(accesses), "instrumented_accesses")
		})
	}
}

// BenchmarkAblationLivenessVariant compares the three §5.2.3 algorithm
// variants' analysis cost.
func BenchmarkAblationLivenessVariant(b *testing.B) {
	sum := summary.Analyze(workloads.ByName("hydro").Fresh())
	for _, v := range []liveness.Variant{liveness.FlowInsensitive, liveness.OneBit, liveness.Full} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				liveness.Analyze(sum, v)
			}
		})
	}
}

// BenchmarkParallelRuntime measures real goroutine execution of the
// user-parallelized mdg against its sequential run.
func BenchmarkParallelRuntime(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run("workers-"+strconv.Itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := experiments.ValidateUserParallelization("mdg", workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMachineModel measures the cost-model evaluation itself.
func BenchmarkMachineModel(b *testing.B) {
	m := machine.AlphaServer8400()
	w := machine.Workload{
		Loops: []machine.LoopWork{{
			ID: "l", Invocations: 10, TotalOps: 1 << 24, Parallel: true,
			FootprintElems: 1 << 20, ReductionElems: 512,
		}},
		SerialOps: 1 << 20,
	}
	for i := 0; i < b.N; i++ {
		for p := 1; p <= 32; p *= 2 {
			m.Speedup(w, p)
		}
	}
}
