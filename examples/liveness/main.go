// Liveness: the Chapter 5 applications. The full interprocedural array
// liveness analysis finds dead arrays at loop exits, splits hydro2d's
// aliased /varh/ common block (Fig 5-9), and finds flo88's contractable
// temporaries (Fig 5-11) — none of which the cheaper variants can do.
package main

import (
	"fmt"

	"suifx/internal/liveness"
	"suifx/internal/summary"
	"suifx/internal/workloads"
)

func main() {
	for _, name := range []string{"hydro", "flo88", "hydro2d"} {
		sum := summary.Analyze(workloads.ByName(name).Fresh())
		for _, v := range []liveness.Variant{liveness.FlowInsensitive, liveness.OneBit, liveness.Full} {
			in := liveness.Analyze(sum, v)
			loops, mod, dead := in.DeadStats()
			fmt.Printf("%-8s %-16s %d loops, %d modified arrays, %d dead at exit\n",
				name, v.String(), loops, mod, dead)
		}
		full := liveness.Analyze(sum, liveness.Full)
		for _, s := range full.CommonBlockSplits() {
			fmt.Printf("%-8s split common /%s/: %s and %s have disjoint live ranges\n",
				name, s.Block, s.A.Name, s.B.Name)
		}
		for _, c := range full.Contractions() {
			fmt.Printf("%-8s contract %s in %s: %d -> %d elements\n",
				name, c.Sym.Name, c.Loop.ID(), c.FullElems, c.FootprintElems)
		}
		fmt.Println()
	}
}
