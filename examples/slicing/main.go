// Slicing: the §3.1 portfolio story. The programmer privatized XPS without
// noticing the IF ... GO TO guard; the control slice of the write contains
// exactly the guard the program slice of the read misses.
package main

import (
	"fmt"

	"suifx/internal/issa"
	"suifx/internal/minif"
	"suifx/internal/slice"
	"suifx/internal/viz"
)

const portfolio = `
      PROGRAM folio
      REAL xps(50), y(51), xp(500)
      INTEGER s, h, jj, n, nls
      n = 9
      nls = 50
      DO 2365 s = 1, n
        IF (s .NE. 1 .AND. s .NE. 5) GO TO 2355
        DO 2350 h = 1, nls
          xps(h) = y(h+1)
2350    CONTINUE
2355    CONTINUE
        DO 2360 jj = 1, nls
          xp(s+(jj-1)*n) = xps(jj)
2360    CONTINUE
2365  CONTINUE
      END
`

func main() {
	prog, err := minif.Parse("folio", portfolio)
	if err != nil {
		panic(err)
	}
	g := issa.Build(prog)
	sl := slice.New(g, slice.Config{Kind: slice.Program})

	// Control slice of the write xps(h) = y(h+1): includes the guard.
	ctl := sl.ControlSliceOfLine("FOLIO", 10)
	hl := map[int]bool{}
	for _, m := range ctl.Lines() {
		for l := range m {
			hl[l] = true
		}
	}
	for st := range ctl.ExtraStmts {
		hl[st.Position().Line] = true
	}
	fmt.Println("control slice of the write to xps (line 10):")
	sv := &viz.SourceView{Prog: prog, Highlight: hl, Anchor: 10, From: 7, To: 15}
	fmt.Print(sv.Render())
	if hl[8] {
		fmt.Println("\nthe IF ... GO TO guard (line 8) is in the slice: the write is conditional,")
		fmt.Println("so XPS is NOT privatizable — the mistake the Explorer would have prevented.")
	}
}
