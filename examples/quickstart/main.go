// Quickstart: parse a MiniF program, run the interprocedural parallelizer,
// and print each loop's verdict — the smallest end-to-end use of the public
// pipeline (parse → analyze → parallelize).
package main

import (
	"fmt"

	"suifx/internal/minif"
	"suifx/internal/parallel"
)

const src = `
      SUBROUTINE saxpy(y, x, a, n)
      REAL y(1000), x(1000), a
      INTEGER i, n
      DO 10 i = 1, n
        y(i) = y(i) + a * x(i)
10    CONTINUE
      END
      PROGRAM quick
      REAL y(1000), x(1000), s
      INTEGER i, n
      n = 1000
      DO 5 i = 1, n
        x(i) = i * 0.5
        y(i) = 0.0
5     CONTINUE
      CALL saxpy(y, x, 2.0, n)
      s = 0.0
      DO 20 i = 1, n
        s = s + y(i)
20    CONTINUE
      WRITE(*,*) s
      END
`

func main() {
	prog, err := minif.Parse("quick", src)
	if err != nil {
		panic(err)
	}
	res := parallel.Parallelize(prog, parallel.Config{UseReductions: true})
	for _, li := range res.Ordered {
		verdict := "sequential"
		if li.Dep.Parallelizable {
			verdict = "parallel"
			if li.Dep.NeedsReduction {
				verdict += " (reduction)"
			}
		}
		fmt.Printf("%-12s %s\n", li.ID(), verdict)
	}
}
