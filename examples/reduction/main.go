// Reduction: recognize a sparse histogram reduction (§6.1.3), execute the
// loop in parallel with the goroutine SPMD runtime using privatized
// accumulators and staggered finalization (§6.3), and validate the result
// against sequential execution (§6.5.2).
package main

import (
	"fmt"

	"suifx/internal/exec"
	"suifx/internal/ir"
	"suifx/internal/minif"
	"suifx/internal/parallel"
)

const src = `
      PROGRAM hist
      REAL h(64)
      INTEGER ind(5000), i
      DO 5 i = 1, 5000
        ind(i) = MOD(i * 37, 64) + 1
5     CONTINUE
      DO 10 i = 1, 5000
        h(ind(i)) = h(ind(i)) + 1.0
10    CONTINUE
      END
`

func main() {
	prog := minif.MustParse("hist", src)
	res := parallel.Parallelize(prog, parallel.Config{UseReductions: true})
	li := res.LoopByID("HIST/10")
	fmt.Printf("%s parallelizable=%v needsReduction=%v\n", li.ID(), li.Dep.Parallelizable, li.Dep.NeedsReduction)

	seq := exec.New(minif.MustParse("hist", src))
	if err := seq.Run(); err != nil {
		panic(err)
	}

	parProg := minif.MustParse("hist", src)
	main := parProg.Main()
	var l10 *ir.DoLoop
	for _, l := range main.Loops() {
		if l.Label == "10" {
			l10 = l
		}
	}
	plan := &exec.ParallelPlan{
		Workers: 8,
		Loops: map[*ir.DoLoop]*exec.LoopPlan{
			l10: {
				Reductions: []exec.ReductionPlan{{Sym: main.Lookup("H"), Op: "+"}},
				Staggered:  true, Chunks: 8,
			},
		},
	}
	par := exec.NewWithPlan(parProg, plan)
	if err := par.Run(); err != nil {
		panic(err)
	}
	n := seq.ArenaSize()
	if err := exec.Validate(seq.Arena()[:n], par.Arena()[:n], 0); err != nil {
		panic(err)
	}
	fmt.Println("parallel histogram matches sequential execution on 8 workers")
}
