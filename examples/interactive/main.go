// Interactive: the §4.1 mdg case study as a programmatic Explorer session —
// the Guru ranks interf/1000 first, the dynamic analyzer shows no deps on
// rl, the user inspects the slice, asserts rl privatizable, and the program
// re-parallelizes with a large modeled speedup.
package main

import (
	"fmt"

	"suifx/internal/explorer"
	"suifx/internal/issa"
	"suifx/internal/slice"
	"suifx/internal/workloads"
)

func main() {
	w := workloads.ByName("mdg")
	sess, err := explorer.NewSession(w.Fresh(), explorer.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("== Guru targets (important sequential loops) ==")
	for _, t := range sess.Targets() {
		if !t.Important {
			continue
		}
		fmt.Printf("  %-14s coverage %5.1f%%  dyn-deps %d  static-deps %d\n",
			t.ID(), t.CoveragePct, t.DynDeps, t.StaticDeps)
	}

	// The Guru presents the slice of the suspect rl references (Fig 4-3).
	g := issa.Build(sess.Prog)
	sl := slice.New(g, slice.Config{Kind: slice.Program, ArrayRestricted: true})
	li := sess.Par.LoopByID("INTERF/1000")
	lo, hi := li.Region.Lines()
	for _, b := range li.Dep.Blocking {
		// Find the first read of the blocking variable inside the loop.
		line := 0
		for ln := lo; ln <= hi && line == 0; ln++ {
			if len(g.FindUse("INTERF", b.Sym.Name, ln)) > 0 {
				line = ln
			}
		}
		fmt.Printf("\n== array-restricted slice of %s at line %d (loop lines %d-%d) ==\n",
			b.Sym.Name, line, lo, hi)
		res := sl.OfUse("INTERF", b.Sym.Name, line)
		for _, l := range res.SortedLines() {
			fmt.Println("  ", l)
		}
	}

	before := sess.Opts.Model.Speedup(sess.Workload(), 8)
	if _, err := sess.AssertPrivate("INTERF/1000", "RL"); err != nil {
		panic(err)
	}
	after := sess.Opts.Model.Speedup(sess.Workload(), 8)
	fmt.Printf("\nmodeled 8-processor speedup: %.1f -> %.1f after the assertion\n", before, after)
}
