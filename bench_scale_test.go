// BenchmarkScale drives the corpus-factory size ladder through the full
// toolchain (generate, parse, analyze, parallelize, incremental
// re-analysis, bytecode execution) and attaches each stage's time as a
// custom metric, so `go test -bench Scale -benchtime=1x | benchjson`
// produces BENCH_scale.json: analysis and execution cost as a function of
// program size, every row reproducible from its recorded (seed, config).
package suifx_test

import (
	"testing"

	"suifx/internal/corpus"
	"suifx/internal/experiments"
)

func BenchmarkScale(b *testing.B) {
	tiers := corpus.SizeLadder()
	if testing.Short() {
		tiers = corpus.QuickLadder()
	}
	for _, tier := range tiers {
		tier := tier
		b.Run(tier.Name, func(b *testing.B) {
			var pt *experiments.ScalePoint
			for i := 0; i < b.N; i++ {
				var err error
				pt, err = experiments.ScaleRun(tier)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(pt.Lines), "lines")
			b.ReportMetric(pt.ParseMs, "parse_ms")
			b.ReportMetric(pt.AnalyzeMs, "analyze_ms")
			b.ReportMetric(pt.ParallelizeMs, "parallelize_ms")
			b.ReportMetric(pt.IncrementalMs, "incremental_ms")
			b.ReportMetric(pt.ExecMs, "exec_ms")
			b.ReportMetric(float64(pt.ExecOps), "exec_ops")
			b.ReportMetric(float64(pt.ChosenLoops), "chosen_loops")
			b.ReportMetric(float64(pt.Recomputed), "recomputed_procs")
		})
	}
}
