module suifx

go 1.22
