// Command suifxd is the long-running SUIF Explorer analysis service: an
// HTTP/JSON daemon exposing the interprocedural analyses over a bounded
// summary cache.
//
// Endpoints:
//
//	POST /v1/analyze   full driver result: SCC schedule, summaries,
//	                   mod/ref effects, per-loop parallelization verdicts
//	POST /v1/slice     interprocedural program/data/control slices
//	POST /v1/profile   exec-based loop profile (virtual time per loop)
//	GET  /v1/stats     cache + server + session counters and histograms
//	GET  /debug/vars   expvar (includes the "suifxd" snapshot)
//	GET  /debug/pprof  standard pprof handlers
//
// Interactive sessions (the Guru dialogue, with incremental re-analysis):
//
//	POST   /v1/session              create: parse, analyze, profile once
//	GET    /v1/session/{id}         lifecycle snapshot
//	DELETE /v1/session/{id}         explicit teardown
//	GET    /v1/session/{id}/guru    ranked target-loop worklist
//	POST   /v1/session/{id}/assert  record an assertion; incremental re-rank
//	POST   /v1/session/{id}/slice   program/data/control slice
//	GET    /v1/session/{id}/why     per-loop "why (not) parallel" report
//	GET    /v1/session/{id}/events  the session's dialogue log
//
// Usage:
//
//	suifxd [-addr host:port] [-timeout 30s] [-max-concurrent 32]
//	       [-max-body 1048576] [-cache-cap 128] [-workers n]
//	       [-exec-mode auto|bytecode|tiered|tree]
//	       [-exec-tier tree|bytecode|tiered]
//	       [-max-sessions 64] [-session-ttl 15m] [-session-sweep 30s]
//
// Coordinator mode shards programs and sessions across worker suifxd
// backends over a consistent-hash ring, with health probes, retries, hedged
// analyze reads, session drain/rebalance, and cluster-wide /v1/batch
// fan-out — same wire contract as a single worker:
//
//	suifxd -coordinator -workers=host1:port,host2:port [-addr host:port]
//	       [-probe-period 2s] [-fail-threshold 3] [-hedge-delay 300ms]
//	       [-max-conns-per-shard 8] [-batch-parallelism n] [-max-body n]
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// in-flight requests drain, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"suifx/internal/cluster"
	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7459", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request analysis timeout")
	maxConc := flag.Int("max-concurrent", 32, "max concurrent heavy requests before 429 shedding")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes (larger gets 413)")
	cacheCap := flag.Int("cache-cap", driver.DefaultCacheCapacity, "summary cache capacity (LRU entries)")
	workers := flag.String("workers", "",
		"analysis worker pool size (0 = GOMAXPROCS); with -coordinator, the comma-separated worker URLs instead")
	execMode := flag.String("exec-mode", "auto", "default /v1/profile execution engine (auto, bytecode, tiered or tree)")
	execTier := flag.String("exec-tier", "", "pin the default engine to a concrete tier (tree, bytecode, tiered or register); overrides -exec-mode")
	maxSessions := flag.Int("max-sessions", 64, "max live interactive sessions (older sessions evicted LRU)")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle time before a session is evicted")
	sessionSweep := flag.Duration("session-sweep", 30*time.Second, "session eviction janitor period")
	coordinator := flag.Bool("coordinator", false,
		"run as cluster coordinator over the -workers URL list instead of analyzing locally")
	probePeriod := flag.Duration("probe-period", cluster.DefaultProbePeriod, "coordinator: worker heartbeat probe period")
	failThreshold := flag.Int("fail-threshold", cluster.DefaultFailThreshold, "coordinator: consecutive probe failures before a worker is ejected")
	hedgeDelay := flag.Duration("hedge-delay", cluster.DefaultHedgeDelay, "coordinator: hedge /v1/analyze to a second shard after this delay (negative disables)")
	maxConns := flag.Int("max-conns-per-shard", cluster.DefaultMaxConnsPerShard, "coordinator: max in-flight requests per worker")
	batchPar := flag.Int("batch-parallelism", 0, "coordinator: cluster-wide concurrent batch items (0 = 2 per worker)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: suifxd [flags]; see -h")
		os.Exit(2)
	}

	if *coordinator {
		runCoordinator(coordinatorConfig{
			addr: *addr, workers: *workers, maxBody: *maxBody,
			probePeriod: *probePeriod, failThreshold: *failThreshold,
			hedgeDelay: *hedgeDelay, maxConns: *maxConns, batchPar: *batchPar,
		})
		return
	}

	poolSize := 0
	if *workers != "" {
		n, err := strconv.Atoi(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "suifxd: -workers %q: want a pool size (or URLs with -coordinator)\n", *workers)
			os.Exit(2)
		}
		poolSize = n
	}

	mode, err := exec.ParseMode(*execMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suifxd:", err)
		os.Exit(2)
	}
	if *execTier != "" {
		mode, err = exec.ParseTier(*execTier)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suifxd:", err)
			os.Exit(2)
		}
	}

	cache := driver.Shared()
	if *cacheCap != driver.DefaultCacheCapacity {
		cache = driver.NewCacheCap(*cacheCap)
	}
	srv := server.New(server.Config{
		Addr:           *addr,
		MaxConcurrent:  *maxConc,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Workers:        poolSize,
		Cache:          cache,
		ExecMode:       mode,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		SessionSweep:   *sessionSweep,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = srv.ListenAndServe(ctx, func(addr string) {
		// The e2e harness parses this line to find the bound port.
		fmt.Printf("suifxd: listening on %s\n", addr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suifxd:", err)
		os.Exit(1)
	}
	fmt.Println("suifxd: graceful shutdown complete")
}

type coordinatorConfig struct {
	addr, workers string
	maxBody       int64
	probePeriod   time.Duration
	failThreshold int
	hedgeDelay    time.Duration
	maxConns      int
	batchPar      int
}

func runCoordinator(cc coordinatorConfig) {
	var urls []string
	for _, u := range strings.Split(cc.workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "suifxd: -coordinator needs -workers=url1,url2,...")
		os.Exit(2)
	}
	co, err := cluster.New(cluster.Config{
		Addr:             cc.addr,
		Workers:          urls,
		MaxBodyBytes:     cc.maxBody,
		ProbePeriod:      cc.probePeriod,
		FailThreshold:    cc.failThreshold,
		HedgeDelay:       cc.hedgeDelay,
		MaxConnsPerShard: cc.maxConns,
		BatchParallelism: cc.batchPar,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suifxd:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("suifxd: coordinator over %d workers: %s\n", len(urls), strings.Join(urls, ", "))
	err = co.ListenAndServe(ctx, func(addr string) {
		// Same readiness line as worker mode; the e2e harness parses it.
		fmt.Printf("suifxd: listening on %s\n", addr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suifxd:", err)
		os.Exit(1)
	}
	fmt.Println("suifxd: graceful shutdown complete")
}
