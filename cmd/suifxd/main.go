// Command suifxd is the long-running SUIF Explorer analysis service: an
// HTTP/JSON daemon exposing the interprocedural analyses over a bounded
// summary cache.
//
// Endpoints:
//
//	POST /v1/analyze   full driver result: SCC schedule, summaries,
//	                   mod/ref effects, per-loop parallelization verdicts
//	POST /v1/slice     interprocedural program/data/control slices
//	POST /v1/profile   exec-based loop profile (virtual time per loop)
//	GET  /v1/stats     cache + server + session counters and histograms
//	GET  /debug/vars   expvar (includes the "suifxd" snapshot)
//	GET  /debug/pprof  standard pprof handlers
//
// Interactive sessions (the Guru dialogue, with incremental re-analysis):
//
//	POST   /v1/session              create: parse, analyze, profile once
//	GET    /v1/session/{id}         lifecycle snapshot
//	DELETE /v1/session/{id}         explicit teardown
//	GET    /v1/session/{id}/guru    ranked target-loop worklist
//	POST   /v1/session/{id}/assert  record an assertion; incremental re-rank
//	POST   /v1/session/{id}/slice   program/data/control slice
//	GET    /v1/session/{id}/why     per-loop "why (not) parallel" report
//	GET    /v1/session/{id}/events  the session's dialogue log
//
// Usage:
//
//	suifxd [-addr host:port] [-timeout 30s] [-max-concurrent 32]
//	       [-max-body 1048576] [-cache-cap 128] [-workers n]
//	       [-exec-mode auto|bytecode|tiered|tree]
//	       [-exec-tier tree|bytecode|tiered]
//	       [-max-sessions 64] [-session-ttl 15m] [-session-sweep 30s]
//
// SIGINT/SIGTERM shut the server down gracefully: the listener closes,
// in-flight requests drain, and the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7459", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request analysis timeout")
	maxConc := flag.Int("max-concurrent", 32, "max concurrent heavy requests before 429 shedding")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes (larger gets 413)")
	cacheCap := flag.Int("cache-cap", driver.DefaultCacheCapacity, "summary cache capacity (LRU entries)")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	execMode := flag.String("exec-mode", "auto", "default /v1/profile execution engine (auto, bytecode, tiered or tree)")
	execTier := flag.String("exec-tier", "", "pin the default engine to a concrete tier (tree, bytecode or tiered); overrides -exec-mode")
	maxSessions := flag.Int("max-sessions", 64, "max live interactive sessions (older sessions evicted LRU)")
	sessionTTL := flag.Duration("session-ttl", 15*time.Minute, "idle time before a session is evicted")
	sessionSweep := flag.Duration("session-sweep", 30*time.Second, "session eviction janitor period")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: suifxd [flags]; see -h")
		os.Exit(2)
	}
	mode, err := exec.ParseMode(*execMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "suifxd:", err)
		os.Exit(2)
	}
	if *execTier != "" {
		mode, err = exec.ParseTier(*execTier)
		if err != nil {
			fmt.Fprintln(os.Stderr, "suifxd:", err)
			os.Exit(2)
		}
	}

	cache := driver.Shared()
	if *cacheCap != driver.DefaultCacheCapacity {
		cache = driver.NewCacheCap(*cacheCap)
	}
	srv := server.New(server.Config{
		Addr:           *addr,
		MaxConcurrent:  *maxConc,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		Workers:        *workers,
		Cache:          cache,
		ExecMode:       mode,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		SessionSweep:   *sessionSweep,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err = srv.ListenAndServe(ctx, func(addr string) {
		// The e2e harness parses this line to find the bound port.
		fmt.Printf("suifxd: listening on %s\n", addr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "suifxd:", err)
		os.Exit(1)
	}
	fmt.Println("suifxd: graceful shutdown complete")
}
