// Command benchjson converts `go test -bench` output into the JSON format
// committed as BENCH_exec.json and uploaded by CI's bench-smoke job (see
// EXPERIMENTS.md for the format).
//
// Usage:
//
//	go test -bench 'Interp' -benchtime=10x . | benchjson [-label note] [-o out.json]
//
// Lines that are not benchmark results (headers, PASS/ok) populate the
// environment fields or are ignored, so raw `go test` output pipes straight
// through. When both BenchmarkInterpTreeDDA and BenchmarkInterpBytecodeDDA
// are present, the derived block records the tree/bytecode ns-per-op and
// allocs-per-op ratios the acceptance criteria are stated in.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level BENCH_exec.json document.
type Report struct {
	Label      string             `json:"label,omitempty"`
	Date       string             `json:"date"`
	GoOS       string             `json:"goos,omitempty"`
	GoArch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived,omitempty"`
}

func main() {
	label := flag.String("label", "", "free-form label recorded in the report")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := &Report{Label: *label, Date: time.Now().UTC().Format("2006-01-02")}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		parseLine(rep, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	derive(rep)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine consumes one line of `go test -bench` output.
func parseLine(rep *Report, line string) {
	if v, ok := strings.CutPrefix(line, "goos: "); ok {
		rep.GoOS = strings.TrimSpace(v)
		return
	}
	if v, ok := strings.CutPrefix(line, "goarch: "); ok {
		rep.GoArch = strings.TrimSpace(v)
		return
	}
	if v, ok := strings.CutPrefix(line, "cpu: "); ok {
		rep.CPU = strings.TrimSpace(v)
		return
	}
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	f := strings.Fields(line)
	if len(f) < 4 {
		return
	}
	name := f[0]
	// Strip the -<procs> suffix go test appends to parallel-capable names.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return
	}
	b := Benchmark{Name: strings.TrimPrefix(name, "Benchmark"), Iterations: iters}
	// The rest is value/unit pairs: 123 ns/op, 456 B/op, 7 allocs/op, then
	// custom metrics like 3.14 speedup_vs_sequential.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[f[i+1]] = v
		}
	}
	rep.Benchmarks = append(rep.Benchmarks, b)
}

// derive records the tree-vs-bytecode ratios when both engines appear, and
// the cold-vs-incremental session re-analysis speedup when the session
// benchmarks appear (committed as BENCH_session.json).
func derive(rep *Report) {
	byName := map[string]Benchmark{}
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	// Engine-tier ratios (BENCH_exec.json v3): numerator ns/op over
	// denominator ns/op under the given key, so every tier's win over the
	// tier below it is recorded explicitly. The sampled-DDA row is the
	// headline specialization metric: the §2.5.2 iteration-sampled
	// instrumented run is where the tiered engine's strip dispatch applies.
	// v3 adds the register-tier rows: register vs tiered is the tier-4
	// acceptance ratio.
	ratios := []struct {
		num, den, nsKey, allocKey string
	}{
		{"InterpTreeDDA", "InterpBytecodeDDA", "dda_ns_ratio", "dda_alloc_ratio"},
		{"InterpTreePlain", "InterpBytecodePlain", "plain_ns_ratio", "plain_alloc_ratio"},
		{"InterpTreeSampledDDA", "InterpBytecodeSampledDDA", "sampled_dda_ns_ratio", ""},
		{"InterpBytecodeDDA", "InterpTieredDDA", "tiered_dda_vs_bytecode", ""},
		{"InterpBytecodePlain", "InterpTieredPlain", "tiered_plain_vs_bytecode", ""},
		{"InterpBytecodeSampledDDA", "InterpTieredSampledDDA", "tiered_sampled_dda_vs_bytecode", ""},
		{"InterpTreeDDA", "InterpTieredDDA", "tiered_dda_vs_tree", ""},
		{"InterpTieredDDA", "InterpRegisterDDA", "register_dda_vs_tiered", ""},
		{"InterpTieredPlain", "InterpRegisterPlain", "register_plain_vs_tiered", ""},
		{"InterpTieredSampledDDA", "InterpRegisterSampledDDA", "register_sampled_dda_vs_tiered", ""},
		{"InterpBytecodePlain", "InterpRegisterPlain", "register_plain_vs_bytecode", ""},
		{"InterpTreePlain", "InterpRegisterPlain", "register_plain_vs_tree", ""},
	}
	for _, r := range ratios {
		num, okN := byName[r.num]
		den, okD := byName[r.den]
		if !okN || !okD || den.NsPerOp == 0 {
			continue
		}
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		rep.Derived[r.nsKey] = round2(num.NsPerOp / den.NsPerOp)
		if r.allocKey != "" && den.AllocsPerOp > 0 {
			rep.Derived[r.allocKey] = round2(float64(num.AllocsPerOp) / float64(den.AllocsPerOp))
		}
	}
	// ParallelEngine/<app>/<N>w sub-benchmarks (BENCH_parallel.json): copy
	// each run's virtual-time speedup up into the derived block and record
	// the wall-clock ratio against the same app's 1-worker run.
	for _, bm := range rep.Benchmarks {
		app, n, ok := parseParallelName(bm.Name)
		if !ok {
			continue
		}
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		if v, ok := bm.Metrics["vt_speedup"]; ok {
			rep.Derived[app+"_vt_speedup_"+n+"w"] = round2(v)
		}
		if base, ok := byName["ParallelEngine/"+app+"/1w"]; ok && bm.NsPerOp > 0 {
			rep.Derived[app+"_wall_ratio_"+n+"w"] = round2(base.NsPerOp / bm.NsPerOp)
		}
	}

	// Scale/<tier> rows (BENCH_scale.json): record each tier's analysis
	// cost per thousand source lines, plus the ladder's superlinearity —
	// the largest tier's per-kloc cost over the smallest's. 1.0 means the
	// analysis scales linearly with program size; the value CI watches.
	type scalePt struct {
		lines, perKloc float64
	}
	var scaleMin, scaleMax *scalePt
	for _, bm := range rep.Benchmarks {
		tier, found := strings.CutPrefix(bm.Name, "Scale/")
		if !found || strings.Contains(tier, "/") {
			continue
		}
		lines := bm.Metrics["lines"]
		analyze := bm.Metrics["analyze_ms"]
		if lines <= 0 {
			continue
		}
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		pt := &scalePt{lines: lines, perKloc: analyze / (lines / 1000)}
		rep.Derived["scale_"+tier+"_analyze_ms_per_kloc"] = round2(pt.perKloc)
		if scaleMin == nil || lines < scaleMin.lines {
			scaleMin = pt
		}
		if scaleMax == nil || lines > scaleMax.lines {
			scaleMax = pt
		}
	}
	if scaleMin != nil && scaleMax != scaleMin && scaleMin.perKloc > 0 {
		rep.Derived["scale_analyze_superlinearity"] = round2(scaleMax.perKloc / scaleMin.perKloc)
	}

	// Tune/<app> rows (BENCH_tune.json): copy each search's modeled
	// chosen-vs-default speedup and its per-nest floor into the derived
	// block, plus the ladder-wide acceptance numbers — the worst per-nest
	// speedup anywhere (must stay ≥ 1: the default plan is in the candidate
	// set) and the best whole-program win.
	tuneWorst, tuneBest := 0.0, 0.0
	tuneSeen := false
	for _, bm := range rep.Benchmarks {
		app, found := strings.CutPrefix(bm.Name, "Tune/")
		if !found || strings.Contains(app, "/") {
			continue
		}
		sp, okS := bm.Metrics["tune_speedup"]
		fl, okF := bm.Metrics["min_loop_speedup"]
		if !okS || !okF {
			continue
		}
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		rep.Derived["tune_"+app+"_speedup"] = round2(sp)
		rep.Derived["tune_"+app+"_min_loop_speedup"] = round2(fl)
		if !tuneSeen || fl < tuneWorst {
			tuneWorst = fl
		}
		if !tuneSeen || sp > tuneBest {
			tuneBest = sp
		}
		tuneSeen = true
	}
	if tuneSeen {
		rep.Derived["tune_min_loop_speedup"] = round2(tuneWorst)
		rep.Derived["tune_best_speedup"] = round2(tuneBest)
	}

	// ClusterBatch/<N>w rows (BENCH_cluster.json): the batch fan-out scaling
	// curve. Each N-worker run's virtual makespan (busiest shard's summed
	// source lines under the ring assignment) ratios against the 1-worker
	// run — the acceptance metric batch_scaleup_2w — and the wall-clock
	// ratio rides along for runners with real parallelism.
	if base, ok := byName["ClusterBatch/1w"]; ok {
		for _, bm := range rep.Benchmarks {
			nw, found := strings.CutPrefix(bm.Name, "ClusterBatch/")
			if !found || nw == "1w" || !strings.HasSuffix(nw, "w") {
				continue
			}
			n := strings.TrimSuffix(nw, "w")
			if _, err := strconv.Atoi(n); err != nil {
				continue
			}
			if rep.Derived == nil {
				rep.Derived = map[string]float64{}
			}
			if mk := bm.Metrics["vmakespan_klines"]; mk > 0 {
				rep.Derived["batch_scaleup_"+nw] = round2(base.Metrics["vmakespan_klines"] / mk)
			}
			if bm.NsPerOp > 0 {
				rep.Derived["batch_wall_ratio_"+nw] = round2(base.NsPerOp / bm.NsPerOp)
			}
		}
	}

	cold, okC := byName["SessionColdAnalyze"]
	incr, okI := byName["SessionIncrementalReanalyze"]
	if okC && okI && incr.NsPerOp > 0 {
		if rep.Derived == nil {
			rep.Derived = map[string]float64{}
		}
		rep.Derived["session_incremental_speedup"] = round2(cold.NsPerOp / incr.NsPerOp)
		if incr.AllocsPerOp > 0 {
			rep.Derived["session_incremental_alloc_ratio"] = round2(float64(cold.AllocsPerOp) / float64(incr.AllocsPerOp))
		}
	}
}

// parseParallelName splits "ParallelEngine/<app>/<N>w" into app and N.
func parseParallelName(name string) (app, n string, ok bool) {
	rest, found := strings.CutPrefix(name, "ParallelEngine/")
	if !found {
		return "", "", false
	}
	app, nw, found := strings.Cut(rest, "/")
	if !found || !strings.HasSuffix(nw, "w") {
		return "", "", false
	}
	n = strings.TrimSuffix(nw, "w")
	if _, err := strconv.Atoi(n); err != nil {
		return "", "", false
	}
	return app, n, true
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }
