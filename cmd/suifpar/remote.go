package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"suifx/internal/httpretry"
	"suifx/internal/server"
)

// connectOpts parameterize a server-side suifpar run (-connect): the same
// report, but the analysis (and for -auto, the tuning search) happens on a
// running suifxd worker or cluster coordinator.
type connectOpts struct {
	base, name, src, workload string
	noRed, liveness           bool
	workers                   int
	auto                      bool
	budget, depth             int
	machine, tier             string
	asJSON                    bool
}

// runConnect drives /v1/analyze (or /v1/tune with -auto) over a retrying
// client: transient connection failures back off and retry up to 3 attempts
// before the final error names every attempt.
func runConnect(ctx context.Context, o connectOpts) error {
	base := strings.TrimRight(o.base, "/")
	rc := &httpretry.Client{
		OnRetry: func(attempt int, err error) {
			fmt.Fprintf(os.Stderr, "suifpar: attempt %d failed (%v); retrying\n", attempt, err)
		},
	}
	sr := server.SourceRef{}
	if o.workload != "" {
		sr.Workload = o.workload
	} else {
		sr.Name, sr.Source = o.name, o.src
	}

	if o.auto {
		var resp server.TuneResponse
		err := postJSON(ctx, rc, base+"/v1/tune", server.TuneRequest{
			SourceRef: sr,
			MaxRuns:   o.budget,
			MaxDepth:  o.depth,
			Machine:   o.machine,
			Tier:      o.tier,
		}, &resp)
		if err != nil {
			return err
		}
		return printTuneReport(resp.Name, resp.Report, o.asJSON)
	}

	var resp server.AnalyzeResponse
	err := postJSON(ctx, rc, base+"/v1/analyze", server.AnalyzeRequest{
		SourceRef:    sr,
		Workers:      o.workers,
		NoReductions: o.noRed,
		Liveness:     o.liveness,
	}, &resp)
	if err != nil {
		return err
	}
	printAnalyzeReport(&resp)
	return nil
}

// printAnalyzeReport mirrors the local report from the wire shape.
func printAnalyzeReport(resp *server.AnalyzeResponse) {
	st := resp.Stats
	fmt.Printf("%s: %d loops, %d parallelizable (%d need reductions), %d sequential\n\n",
		resp.Name, st.TotalLoops, st.ParallelizableN, st.WithReductionN, st.SequentialN)
	for _, li := range resp.Loops {
		verdict := "SEQUENTIAL"
		if li.Chosen {
			verdict = "PARALLEL (chosen)"
		} else if li.Parallelizable {
			verdict = "parallelizable (nested)"
		}
		fmt.Printf("%-20s lines %d-%d  %s\n", li.ID, li.Lines[0], li.Lines[1], verdict)
		for _, vr := range li.Vars {
			tag := vr.Class
			if vr.Reduction != "" {
				tag += " (" + vr.Reduction + ")"
			}
			if vr.ByAssertion {
				tag += " [user]"
			}
			if vr.Class == "dependence" {
				fmt.Printf("    %-12s %-14s %s\n", vr.Name, tag, vr.Reason)
			} else {
				fmt.Printf("    %-12s %s\n", vr.Name, tag)
			}
		}
	}
}

// postJSON posts a request and decodes the response, surfacing the server's
// JSON error envelope as a plain error.
func postJSON(ctx context.Context, rc *httpretry.Client, url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := rc.PostJSON(ctx, url, b)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var env struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		if json.Unmarshal(data, &env) == nil && env.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, env.Error)
		}
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
