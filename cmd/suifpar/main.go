// Command suifpar is the batch automatic parallelizer: it analyzes a MiniF
// source file and reports, per loop, the parallelization verdict and the
// classification of every variable — the §2.4 compiler in report form.
//
// Usage:
//
//	suifpar [-noreductions] [-liveness] [-workers n] file.f
//	suifpar -workload mdg
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"suifx/internal/driver"
	"suifx/internal/liveness"
	"suifx/internal/parallel"
	"suifx/internal/workloads"
)

func main() {
	noRed := flag.Bool("noreductions", false, "disable reduction recognition")
	useLive := flag.Bool("liveness", false, "enable the Chapter 5 array liveness analysis")
	wl := flag.String("workload", "", "analyze a built-in workload instead of a file")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	var name, src string
	switch {
	case *wl != "":
		w := workloads.ByName(*wl)
		name, src = w.Name, w.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: suifpar [-noreductions] [-liveness] file.f | -workload name")
		os.Exit(2)
	}

	// The context-aware cache path: Ctrl-C abandons queued SCC waves
	// instead of running the analysis to completion, and repeated runs in
	// one process (tests, future REPL use) share summaries.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res0, err := driver.Shared().AnalyzeCtx(ctx, name, src, driver.Options{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	sum := res0.Sum
	cfg := parallel.Config{UseReductions: !*noRed}
	if *useLive {
		cfg.DeadAtExit = liveness.Analyze(sum, liveness.Full).Oracle()
	}
	res := parallel.ParallelizeWith(sum, cfg)

	stats := res.Stats()
	fmt.Printf("%s: %d loops, %d parallelizable (%d need reductions), %d sequential\n\n",
		name, stats.TotalLoops, stats.ParallelizableN, stats.WithReductionN, stats.SequentialN)
	for _, li := range res.Ordered {
		verdict := "SEQUENTIAL"
		if li.Chosen {
			verdict = "PARALLEL (chosen)"
		} else if li.Dep.Parallelizable {
			verdict = "parallelizable (nested)"
		}
		lo, hi := li.Region.Lines()
		fmt.Printf("%-20s lines %d-%d  %s\n", li.ID(), lo, hi, verdict)
		for _, vr := range li.Dep.Vars {
			tag := vr.Class.String()
			if vr.RedOp != "" {
				tag += " (" + vr.RedOp + ")"
			}
			if vr.ByAssertion {
				tag += " [user]"
			}
			if vr.Class.String() == "dependence" {
				fmt.Printf("    %-12s %-14s %s\n", vr.Sym.Name, tag, vr.Reason)
			} else if vr.Class.String() != "read-only" && vr.Class.String() != "index" {
				fmt.Printf("    %-12s %s\n", vr.Sym.Name, tag)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "suifpar:", err)
	os.Exit(1)
}
