// Command suifpar is the batch automatic parallelizer: it analyzes a MiniF
// source file and reports, per loop, the parallelization verdict and the
// classification of every variable — the §2.4 compiler in report form.
//
// Usage:
//
//	suifpar [-noreductions] [-liveness] [-workers n] [-exec-tier tiered] file.f
//	suifpar -workload mdg
//	suifpar -auto [-budget n] [-depth d] [-machine alpha] -workload mdg
//
// With -auto it additionally runs the tuning search: every approved nest's
// strategy space (worker count, schedule, reduction discipline, interchange
// depth) is executed under virtual time and scored with the machine cost
// model, and the winning plan is reported per nest.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"suifx/internal/driver"
	"suifx/internal/exec"
	"suifx/internal/liveness"
	"suifx/internal/machine"
	"suifx/internal/parallel"
	"suifx/internal/tune"
	"suifx/internal/workloads"
)

func main() {
	noRed := flag.Bool("noreductions", false, "disable reduction recognition")
	useLive := flag.Bool("liveness", false, "enable the Chapter 5 array liveness analysis")
	wl := flag.String("workload", "", "analyze a built-in workload instead of a file")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	auto := flag.Bool("auto", false, "run the auto-tuning parallelization search over the approved loops")
	budget := flag.Int("budget", 0, "auto: max plan executions (0 = unlimited)")
	depth := flag.Int("depth", 1, "auto: max interchange depth to search")
	machName := flag.String("machine", "alpha", "auto: cost model (alpha, challenge, origin)")
	asJSON := flag.Bool("json", false, "auto: emit the full tune report as JSON")
	execTier := flag.String("exec-tier", "", "execution engine tier for -auto runs (tree, bytecode, tiered or register)")
	connect := flag.String("connect", "",
		"run the analysis on a suifxd server (or cluster coordinator) at this base URL instead of locally")
	flag.Parse()

	if *execTier != "" {
		tier, err := exec.ParseTier(*execTier)
		if err != nil {
			fatal(err)
		}
		// The tune search resolves ModeAuto through the package default, so
		// pinning the default pins every execution this process makes.
		exec.DefaultMode = tier
	}

	var name, src string
	switch {
	case *wl != "":
		w := workloads.ByName(*wl)
		name, src = w.Name, w.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: suifpar [-noreductions] [-liveness] file.f | -workload name")
		os.Exit(2)
	}

	// The context-aware cache path: Ctrl-C abandons queued SCC waves
	// instead of running the analysis to completion, and repeated runs in
	// one process (tests, future REPL use) share summaries.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *connect != "" {
		err := runConnect(ctx, connectOpts{
			base: *connect, name: name, src: src, workload: *wl,
			noRed: *noRed, liveness: *useLive, workers: *workers,
			auto: *auto, budget: *budget, depth: *depth,
			machine: *machName, tier: *execTier, asJSON: *asJSON,
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	res0, err := driver.Shared().AnalyzeCtx(ctx, name, src, driver.Options{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	sum := res0.Sum
	cfg := parallel.Config{UseReductions: !*noRed}
	if *useLive {
		cfg.DeadAtExit = liveness.Analyze(sum, liveness.Full).Oracle()
	}
	res := parallel.ParallelizeWith(sum, cfg)

	if *auto {
		if err := runAuto(ctx, res, *budget, *depth, *machName, *asJSON); err != nil {
			fatal(err)
		}
		return
	}

	stats := res.Stats()
	fmt.Printf("%s: %d loops, %d parallelizable (%d need reductions), %d sequential\n\n",
		name, stats.TotalLoops, stats.ParallelizableN, stats.WithReductionN, stats.SequentialN)
	for _, li := range res.Ordered {
		verdict := "SEQUENTIAL"
		if li.Chosen {
			verdict = "PARALLEL (chosen)"
		} else if li.Dep.Parallelizable {
			verdict = "parallelizable (nested)"
		}
		lo, hi := li.Region.Lines()
		fmt.Printf("%-20s lines %d-%d  %s\n", li.ID(), lo, hi, verdict)
		for _, vr := range li.Dep.Vars {
			tag := vr.Class.String()
			if vr.RedOp != "" {
				tag += " (" + vr.RedOp + ")"
			}
			if vr.ByAssertion {
				tag += " [user]"
			}
			if vr.Class.String() == "dependence" {
				fmt.Printf("    %-12s %-14s %s\n", vr.Sym.Name, tag, vr.Reason)
			} else if vr.Class.String() != "read-only" && vr.Class.String() != "index" {
				fmt.Printf("    %-12s %s\n", vr.Sym.Name, tag)
			}
		}
	}
}

// runAuto executes the tuning search and prints the winning plan per nest.
func runAuto(ctx context.Context, res *parallel.Result, budget, depth int, machName string, asJSON bool) error {
	var model *machine.Model
	switch machName {
	case "", "alpha":
		model = machine.AlphaServer8400()
	case "challenge":
		model = machine.SGIChallenge()
	case "origin":
		model = machine.SGIOrigin()
	default:
		return fmt.Errorf("unknown machine %q (want alpha, challenge or origin)", machName)
	}
	rep, err := tune.Search(ctx, res, tune.Config{
		MaxRuns:  budget,
		MaxDepth: depth,
		Model:    model,
	})
	if err != nil {
		return err
	}
	return printTuneReport(res.Prog.Name, rep, asJSON)
}

// printTuneReport renders a tune report — computed locally or decoded from a
// server's /v1/tune response — as the per-nest winners table.
func printTuneReport(progName string, rep *tune.Report, asJSON bool) error {
	if asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(data, '\n'))
		return nil
	}
	fmt.Printf("%s: tuned %d nests in %d runs (%d variants scored, %d pruned)\n",
		progName, len(rep.Loops), rep.Runs, rep.Searched, rep.Pruned)
	if rep.BudgetExhausted {
		fmt.Println("  search budget exhausted: unexecuted variants counted as pruned")
	}
	fmt.Printf("  machine %s, default plan %dw/even/staggered\n\n", rep.Machine, rep.DefaultWorkers)
	fmt.Printf("%-20s %8s  %-28s %10s\n", "NEST", "SEQ OPS", "CHOSEN PLAN", "SPEEDUP")
	for _, lr := range rep.Loops {
		plan := "sequential (parallel loses)"
		if lr.Chosen.Workers > 1 {
			disc := "single-lock"
			if lr.Chosen.Staggered {
				disc = "staggered"
			}
			plan = fmt.Sprintf("%dw/%s/%s", lr.Chosen.Workers, lr.Chosen.Schedule, disc)
			if lr.Chosen.Depth > 0 {
				plan += fmt.Sprintf("/depth-%d", lr.Chosen.Depth)
			}
		}
		fmt.Printf("%-20s %8d  %-28s %9.2fx\n", lr.ID, lr.SeqOps, plan, lr.Speedup)
	}
	fmt.Printf("\nwhole program: %.2fx modeled speedup over the default plan\n", rep.Speedup)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "suifpar:", err)
	os.Exit(1)
}
