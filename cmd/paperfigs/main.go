// Command paperfigs regenerates the paper's evaluation tables and figures
// from this reproduction. With no arguments it prints every table; pass
// figure IDs (e.g. "4-1 5-12 6-6") to print a subset. Generation fans out
// across GOMAXPROCS goroutines — workload analyses are shared through the
// driver cache — and output order always matches request order.
package main

import (
	"fmt"
	"os"

	"suifx/internal/experiments"
)

func main() {
	ids := os.Args[1:]
	if len(ids) == 0 {
		ids = experiments.TableIDs()
	}
	tables, err := experiments.Generate(ids)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperfigs: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		fmt.Println(t)
	}
}
