// Command paperfigs regenerates the paper's evaluation tables and figures
// from this reproduction. With no arguments it prints every table; pass
// figure IDs (e.g. "4-1 5-12 6-6") to print a subset.
package main

import (
	"fmt"
	"os"

	"suifx/internal/experiments"
)

var generators = map[string]func() *experiments.Table{
	"4-1": experiments.Fig4_1, "4-7": experiments.Fig4_7, "4-8": experiments.Fig4_8,
	"4-9": experiments.Fig4_9, "4-10": experiments.Fig4_10,
	"5-5": experiments.Fig5_5, "5-6": experiments.Fig5_6, "5-7": experiments.Fig5_7,
	"5-8": experiments.Fig5_8, "5-10": experiments.Fig5_10, "5-12": experiments.Fig5_12,
	"6-1": experiments.Fig6_1, "6-2": experiments.Fig6_2, "6-3": experiments.Fig6_3,
	"6-4": experiments.Fig6_4, "6-5": experiments.Fig6_5, "6-6": experiments.Fig6_6,
	"6-7": experiments.Fig6_7,
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		for _, t := range experiments.AllTables() {
			fmt.Println(t)
		}
		return
	}
	for _, id := range args {
		gen, ok := generators[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "paperfigs: unknown figure %q\n", id)
			os.Exit(1)
		}
		fmt.Println(gen())
	}
}
