package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"

	"suifx/internal/httpretry"
	"suifx/internal/session"
)

// remote drives an interactive session hosted by a suifxd server (-connect):
// the same Guru dialogue, but the program, its analysis state, and the
// incremental re-analysis live server-side, so many explorers can share one
// warm analysis cache. Transient connection failures (a refused dial while
// the daemon restarts, a shed 429) are retried with jittered backoff up to
// 3 attempts before surfacing.
type remote struct {
	base string
	id   string
	hc   *httpretry.Client
}

func runRemote(base, name, src, workload, script string) {
	r := &remote{base: strings.TrimRight(base, "/"), hc: &httpretry.Client{
		OnRetry: func(attempt int, err error) {
			fmt.Fprintf(os.Stderr, "explorer: attempt %d failed (%v); retrying\n", attempt, err)
		},
	}}
	req := map[string]any{}
	if workload != "" {
		req["workload"] = workload
	} else {
		req["name"], req["source"] = name, src
	}
	var created struct {
		ID   string              `json:"id"`
		Info session.Info        `json:"info"`
		Guru *session.GuruReport `json:"guru"`
	}
	if err := r.call("POST", "/v1/session", req, &created); err != nil {
		fatal(err)
	}
	r.id = created.ID
	fmt.Printf("SUIF Explorer (remote %s): session %s on %s (%d loops)\n",
		r.base, r.id, created.Info.Program, created.Info.Loops)
	r.report(created.Guru)

	run := func(line string) bool { return r.command(strings.Fields(line)) }
	if script != "" {
		for _, c := range strings.Split(script, ";") {
			if !run(strings.TrimSpace(c)) {
				return
			}
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if !run(sc.Text()) {
			return
		}
		fmt.Print("> ")
	}
}

func (r *remote) report(g *session.GuruReport) {
	fmt.Printf("parallelism coverage: %.0f%%   granularity: %.3f ms   (reanalysis: %d recomputed, %d reused)\n",
		g.Coverage*100, g.GranularityMs, g.Reanalysis.Recomputed, g.Reanalysis.Reused)
}

func (r *remote) command(args []string) bool {
	if len(args) == 0 {
		return true
	}
	switch args[0] {
	case "quit", "exit":
		if err := r.call("DELETE", "/v1/session/"+r.id, nil, nil); err != nil {
			fmt.Println("warning:", err)
		}
		return false
	case "report", "targets":
		var g session.GuruReport
		if err := r.call("GET", "/v1/session/"+r.id+"/guru", nil, &g); err != nil {
			fmt.Println("error:", err)
			break
		}
		r.report(&g)
		if args[0] == "targets" {
			for i, t := range g.Targets {
				mark := " "
				if t.Important {
					mark = "*"
				}
				fmt.Printf("%s %2d. %-16s coverage %5.1f%%  granularity %7.3f ms  dyn-deps %d  static-deps %d\n",
					mark, i+1, t.Loop, t.CoveragePct, t.GranularityMs, t.DynDeps, t.StaticDeps)
				if len(t.Blocking) > 0 {
					fmt.Printf("       blocked by %s\n", strings.Join(t.Blocking, ", "))
				}
			}
		}
	case "assert":
		if len(args) != 4 {
			fmt.Println("usage: assert private|independent <loop> <var>")
			break
		}
		var out session.AssertOutcome
		req := map[string]any{
			"kind": args[1],
			"loop": strings.ToUpper(args[2]),
			"var":  strings.ToUpper(args[3]),
		}
		if err := r.call("POST", "/v1/session/"+r.id+"/assert", req, &out); err != nil {
			fmt.Println("error:", err)
			break
		}
		if !out.Accepted {
			fmt.Printf("rejected (%s): %s\n", out.Code, out.Reason)
			break
		}
		for _, w := range out.Warnings {
			fmt.Println("warning:", w)
		}
		fmt.Printf("accepted; re-analyzed incrementally (%d summaries recomputed, %d reused)\n",
			out.Reanalysis.Recomputed, out.Reanalysis.Reused)
		r.report(out.Guru)
	case "slice", "cslice":
		req := map[string]any{}
		switch {
		case args[0] == "slice" && len(args) == 4:
			line, _ := strconv.Atoi(args[3])
			req["kind"], req["proc"], req["var"], req["line"] = "program", strings.ToUpper(args[1]), strings.ToUpper(args[2]), line
		case args[0] == "cslice" && len(args) == 3:
			line, _ := strconv.Atoi(args[2])
			req["kind"], req["proc"], req["line"] = "control", strings.ToUpper(args[1]), line
		default:
			fmt.Println("usage: slice <proc> <var> <line> | cslice <proc> <line>")
			return true
		}
		var rep session.SliceReport
		if err := r.call("POST", "/v1/session/"+r.id+"/slice", req, &rep); err != nil {
			fmt.Println("error:", err)
			break
		}
		for proc, lines := range rep.Procs {
			strs := make([]string, len(lines))
			for i, l := range lines {
				strs[i] = strconv.Itoa(l)
			}
			fmt.Printf("--- %s: lines %s\n", proc, strings.Join(strs, " "))
		}
	case "why":
		if len(args) != 2 {
			fmt.Println("usage: why <loop>")
			break
		}
		var rep struct {
			Verdict  string `json:"verdict"`
			Blocking []struct {
				Var     string `json:"var"`
				Reason  string `json:"reason"`
				Lines   []int  `json:"lines"`
				DynDeps int64  `json:"dyn_deps"`
			} `json:"blocking"`
		}
		path := "/v1/session/" + r.id + "/why?loop=" + url.QueryEscape(strings.ToUpper(args[1]))
		if err := r.call("GET", path, nil, &rep); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Println(rep.Verdict)
		for _, b := range rep.Blocking {
			fmt.Printf("  %s: %s (lines %v, dynamic deps %d)\n", b.Var, b.Reason, b.Lines, b.DynDeps)
		}
	case "events":
		var out struct {
			Events []session.Event `json:"events"`
		}
		if err := r.call("GET", "/v1/session/"+r.id+"/events", nil, &out); err != nil {
			fmt.Println("error:", err)
			break
		}
		for _, e := range out.Events {
			fmt.Printf("%3d %-16s %s\n", e.Seq, e.Kind, e.Detail)
		}
	default:
		fmt.Println("remote commands: targets report assert slice cslice why events quit")
	}
	return true
}

// call is the remote session's JSON transport; server errors arrive in the
// uniform {"error": ...} envelope and surface as plain Go errors.
func (r *remote) call(method, path string, body, out any) error {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, r.base+path, rd)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	// bytes.Reader bodies give the request a GetBody, so retries rewind.
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var env struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, env.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
