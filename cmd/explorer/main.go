// Command explorer is the interactive SUIF Explorer session (Chapter 2): it
// parallelizes and profiles a program, then takes commands — show the
// Guru's target list, render the Codeview and call graph, compute slices of
// suspect references, and check/apply assertions, re-parallelizing after
// each one.
//
// Usage:
//
//	explorer file.f            interactive session on a MiniF file
//	explorer -workload mdg     session on a built-in workload
//	explorer -connect URL ...  drive a session hosted by a suifxd server
//
// Commands: targets | codeview [loop] | callgraph [proc] | report |
// slice <proc> <var> <line> | cslice <proc> <line> |
// assert private <loop> <var> | assert independent <loop> <var> |
// speedup [procs] | quit
//
// With -connect the session state lives in suifxd's session subsystem: the
// commands map onto the /v1/session routes (targets report assert slice
// cslice why events quit) and assertions re-analyze incrementally
// server-side.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"suifx/internal/explorer"
	"suifx/internal/issa"
	"suifx/internal/minif"
	"suifx/internal/slice"
	"suifx/internal/viz"
	"suifx/internal/workloads"
)

func main() {
	wl := flag.String("workload", "", "explore a built-in workload")
	script := flag.String("c", "", "semicolon-separated commands to run non-interactively")
	connect := flag.String("connect", "", "drive a session on a suifxd server at this base URL")
	flag.Parse()

	var name, src string
	switch {
	case *wl != "":
		w := workloads.ByName(*wl)
		name, src = w.Name, w.Source
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: explorer [-c commands] [-connect url] file.f | -workload name")
		os.Exit(2)
	}

	if *connect != "" {
		runRemote(*connect, name, src, *wl, *script)
		return
	}

	prog, err := minif.Parse(name, src)
	if err != nil {
		fatal(err)
	}
	sess, err := explorer.NewSession(prog, explorer.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("SUIF Explorer: %s loaded (%d lines)\n", name, prog.LineCount(true))
	report(sess)

	run := func(line string) bool { return command(sess, strings.Fields(line)) }
	if *script != "" {
		for _, c := range strings.Split(*script, ";") {
			if !run(strings.TrimSpace(c)) {
				return
			}
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		if !run(sc.Text()) {
			return
		}
		fmt.Print("> ")
	}
}

func report(s *explorer.Session) {
	cov, gran := s.CoverageGranularity()
	fmt.Printf("parallelism coverage: %.0f%%   granularity: %.3f ms\n", cov*100, gran)
}

func command(s *explorer.Session, args []string) bool {
	if len(args) == 0 {
		return true
	}
	switch args[0] {
	case "quit", "exit":
		return false
	case "report":
		report(s)
	case "targets":
		for i, t := range s.Targets() {
			mark := " "
			if t.Important {
				mark = "*"
			}
			fmt.Printf("%s %2d. %-16s coverage %5.1f%%  granularity %7.3f ms  dyn-deps %d  static-deps %d\n",
				mark, i+1, t.ID(), t.CoveragePct, t.GranularityMs, t.DynDeps, t.StaticDeps)
			for _, b := range t.Loop.Dep.Blocking {
				fmt.Printf("       blocked by %s: %s\n", b.Sym.Name, b.Reason)
			}
		}
	case "codeview":
		cv := &viz.Codeview{Prog: s.Prog, Par: s.Par}
		if len(args) > 1 {
			cv.FocusLoop = args[1]
		}
		fmt.Print(cv.Render())
	case "callgraph":
		cg := &viz.CallGraph{Prog: s.Prog}
		if len(args) > 1 {
			cg.Focus = args[1]
		}
		fmt.Print(cg.Render())
	case "slice":
		if len(args) != 4 {
			fmt.Println("usage: slice <proc> <var> <line>")
			break
		}
		line, _ := strconv.Atoi(args[3])
		g := issa.Build(s.Prog)
		sl := slice.New(g, slice.Config{Kind: slice.Program})
		res := sl.OfUse(strings.ToUpper(args[1]), strings.ToUpper(args[2]), line)
		showSlice(s, res, line)
	case "cslice":
		if len(args) != 3 {
			fmt.Println("usage: cslice <proc> <line>")
			break
		}
		line, _ := strconv.Atoi(args[2])
		g := issa.Build(s.Prog)
		sl := slice.New(g, slice.Config{Kind: slice.Program})
		res := sl.ControlSliceOfLine(strings.ToUpper(args[1]), line)
		showSlice(s, res, line)
	case "assert":
		if len(args) != 4 {
			fmt.Println("usage: assert private|independent <loop> <var>")
			break
		}
		loop, v := strings.ToUpper(args[2]), strings.ToUpper(args[3])
		switch args[1] {
		case "private":
			warnings, err := s.AssertPrivate(loop, v)
			if err != nil {
				fmt.Println("rejected:", err)
				break
			}
			for _, w := range warnings {
				fmt.Println("warning:", w)
			}
			fmt.Println("accepted; re-parallelized")
			report(s)
		case "independent":
			if err := s.AssertIndependent(loop, v); err != nil {
				fmt.Println("rejected:", err)
				break
			}
			fmt.Println("accepted; re-parallelized")
			report(s)
		default:
			fmt.Println("usage: assert private|independent <loop> <var>")
		}
	case "speedup":
		procs := 8
		if len(args) > 1 {
			procs, _ = strconv.Atoi(args[1])
		}
		fmt.Printf("modeled speedup on %d processors (%s): %.1f\n",
			procs, s.Opts.Model.Name, s.Opts.Model.Speedup(s.Workload(), procs))
	default:
		fmt.Println("commands: targets codeview callgraph report slice cslice assert speedup quit")
	}
	return true
}

func showSlice(s *explorer.Session, res *slice.Result, anchor int) {
	lines := res.Lines()
	for proc, m := range lines {
		hl := map[int]bool{}
		lo, hi := 1<<30, 0
		for l := range m {
			hl[l] = true
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		sv := &viz.SourceView{Prog: s.Prog, Highlight: hl, Anchor: anchor, From: lo - 1, To: hi + 1}
		fmt.Printf("--- %s (%d lines in slice)\n%s", proc, len(m), sv.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "explorer:", err)
	os.Exit(1)
}
